"""Fast slotted simulator for *fully connected* saturated WLANs.

In a fully connected network every station observes the same channel, so the
system evolves as a renewal process over "virtual slots" (Bianchi's model,
also the basis of the paper's Eq. 2-3): a virtual slot is either

* idle (no station transmits)            — duration ``sigma``;
* a success (exactly one station)        — duration ``Ts``;
* a collision (two or more stations)     — duration ``Tc``.

Station backoff counters decrement only during idle slots and a station
transmits in the slot in which its counter is zero.  This is exact for fully
connected topologies and one to two orders of magnitude faster than the
event-driven simulator, which is why the fully connected experiments
(Figures 2, 3, 8-11, 13, Table II) and the controller-convergence studies use
it.  Hidden-node topologies *must* use :mod:`repro.sim.simulation` instead —
this simulator refuses to model them.

The simulator drives exactly the same station policies
(:mod:`repro.mac.backoff`) and AP controllers (:mod:`repro.core`) as the
event-driven one, so results are directly comparable (an ablation benchmark
checks their agreement).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.controller import AccessPointController
from ..mac.backoff import BackoffPolicy
from ..mac.schemes import Scheme
from ..phy.constants import PhyParameters
from ..telemetry import current as _telemetry
from ..telemetry import probes as _probes
from ..traffic import ArrivalProcess, ArrivalStream, FrameQueue, station_arrival_rng
from .dynamics import ActivitySchedule, constant_activity
from .metrics import MetricsCollector, SimulationResult

__all__ = ["SlottedSimulator", "run_slotted"]

#: Sentinel "minimum counter" when no station holds a frame: large enough
#: that the idle fast-forward always runs to its boundary.
_NO_CONTENDER = 2 ** 62


def _primary_control_value(control: Dict[str, float]) -> Optional[float]:
    """The scalar control value to log for convergence plots."""
    if "p" in control:
        return control["p"]
    if "p0" in control:
        return control["p0"]
    return None


class SlottedSimulator:
    """Virtual-slot simulator for fully connected saturated networks.

    Parameters
    ----------
    scheme:
        The MAC scheme (station policy factory + AP controller).
    num_stations:
        Number of stations; ignored when ``activity`` is given.
    phy:
        PHY timing parameters.
    seed:
        Seed of the simulator's random generator.
    activity:
        Optional :class:`ActivitySchedule` for dynamic scenarios; stations
        beyond the active count do not contend.
    broadcast_control:
        When True (default, matches wTOP-CSMA) every station applies the
        control values of every ACK; when False only the station whose frame
        was acknowledged applies them (sufficient for TORA-CSMA).
    report_interval:
        When set, the throughput and control-variable time lines are sampled
        every ``report_interval`` seconds (Figures 8-11).
    frame_error_rate:
        Probability that an otherwise collision-free transmission is lost to
        an i.i.d. channel error (paper, footnote 1).  Errored frames occupy
        the channel for ``Tc`` (no ACK follows) and count as failures for the
        transmitter's backoff policy.
    traffic:
        Optional :class:`~repro.traffic.ArrivalProcess` describing each
        station's frame arrivals.  ``None`` (or the saturated process)
        reproduces the classic always-backlogged behaviour bit-identically;
        otherwise stations hold a bounded FIFO queue, a station with an
        empty queue defers (its backoff counter freezes) and rejoins
        contention when a frame arrives.  Arrival randomness comes from
        per-station generators salted separately from the contention stream
        (:func:`repro.traffic.station_arrival_rng`), so enabling traffic
        never perturbs the backoff draws.
    """

    def __init__(
        self,
        scheme: Scheme,
        num_stations: Optional[int] = None,
        phy: Optional[PhyParameters] = None,
        seed: int = 0,
        activity: Optional[ActivitySchedule] = None,
        broadcast_control: bool = True,
        report_interval: Optional[float] = None,
        frame_error_rate: float = 0.0,
        traffic: Optional[ArrivalProcess] = None,
    ) -> None:
        if activity is None:
            if num_stations is None:
                raise ValueError("either num_stations or activity is required")
            activity = constant_activity(num_stations)
        self._activity = activity
        self._num_stations = activity.max_active
        if num_stations is not None and num_stations != self._num_stations:
            if num_stations < self._num_stations:
                raise ValueError(
                    "num_stations is smaller than the activity schedule's maximum"
                )
            self._num_stations = num_stations
        self._scheme = scheme
        self._phy = phy or PhyParameters()
        self._rng = np.random.default_rng(seed)
        self._broadcast_control = broadcast_control
        if report_interval is not None and report_interval <= 0:
            raise ValueError("report_interval must be positive")
        self._report_interval = report_interval
        if not 0.0 <= frame_error_rate < 1.0:
            raise ValueError("frame_error_rate must lie in [0, 1)")
        self._frame_error_rate = float(frame_error_rate)
        self._seed = int(seed)
        # The retry limit applies to the MAC regardless of workload, so it
        # is lifted off the spec before the saturated process canonicalises
        # to None (the bit-identical classic path).
        self._retry_limit = traffic.retry_limit if traffic is not None else None
        if traffic is not None and traffic.is_saturated:
            traffic = None
        self._traffic = traffic
        self._queues: List[FrameQueue] = []
        if traffic is not None:
            self._queues = [
                FrameQueue(traffic.queue_limit)
                for _ in range(self._num_stations)
            ]

        self._policies: List[BackoffPolicy] = scheme.make_policies(self._num_stations)
        self._controller: AccessPointController = scheme.make_controller()
        self._observers = [p for p in self._policies if p.observes_channel]

    # ------------------------------------------------------------------
    @property
    def controller(self) -> AccessPointController:
        return self._controller

    @property
    def policies(self) -> Sequence[BackoffPolicy]:
        return tuple(self._policies)

    @property
    def phy(self) -> PhyParameters:
        return self._phy

    # ------------------------------------------------------------------
    def run(self, duration: float, warmup: float = 0.0) -> SimulationResult:
        """Simulate ``warmup + duration`` seconds; metrics cover the last part.

        The warm-up lets adaptive schemes (IdleSense, wTOP, TORA) converge
        before throughput is measured, mirroring the paper's practice of
        reporting steady-state throughput.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")

        phy = self._phy
        sigma = phy.slot_time
        ts = phy.ts
        tc = phy.tc
        payload = phy.payload_bits
        end_time = warmup + duration

        counters = np.array(
            [policy.initial_backoff(self._rng) for policy in self._policies],
            dtype=np.int64,
        )
        # Stations pick up the AP's initial control values before contending
        # (the paper's stations start from a default and adopt the advertised
        # value on the first ACK; applying it up-front removes a transient
        # that has no bearing on steady state).
        self._apply_control_to_all(self._controller.control())

        metrics = MetricsCollector(self._num_stations)
        active = self._activity.active_count(0.0)
        change_times = list(self._activity.change_times())
        next_change_index = 0

        # Traffic state: parked (empty-queue) stations freeze their counters
        # and rejoin contention when a frame arrives.  The saturated path
        # allocates none of this, so it stays bit-identical to the classic
        # behaviour.
        traffic = self._traffic
        streams: List[ArrivalStream] = []
        has_frame = None
        flow_left = flow_done = None
        flow_total = 0
        if traffic is not None:
            has_frame = np.zeros(self._num_stations, dtype=bool)
            if traffic.is_closed_loop:
                # Closed loop: pre-fill each queue with the window at t=0;
                # later releases are clocked by departures, so there is no
                # autonomous arrival stream at all.
                flow = traffic.flow_frames
                prefill = (traffic.window if flow is None
                           else min(traffic.window, flow))
                remaining = 2 ** 62 if flow is None else flow - prefill
                flow_left = np.full(self._num_stations, remaining,
                                    dtype=np.int64)
                flow_done = np.zeros(self._num_stations, dtype=np.int64)
                flow_total = 0 if flow is None else int(flow)
                for station in range(self._num_stations):
                    for _ in range(prefill):
                        self._queues[station].offer(0.0)
                    has_frame[station] = prefill > 0
                if warmup == 0.0:
                    metrics.record_arrival(prefill * self._num_stations)
            else:
                streams = [
                    ArrivalStream(
                        traffic, station_arrival_rng(self._seed, s),
                        rate_fps=traffic.rate_for(s, self._num_stations),
                    )
                    for s in range(self._num_stations)
                ]
        retry_limit = self._retry_limit
        retry_counts = (np.zeros(self._num_stations, dtype=np.int64)
                        if retry_limit is not None else None)

        # Loop-level telemetry: the enabled flag is hoisted into a local so
        # the disabled (default) path costs one predictable branch per
        # iteration; counters are plain ints and never touch the RNG.
        tel = _telemetry()
        tel_on = tel.enabled
        t_virtual_slots = t_idle_ffwd = t_busy = t_discards = 0

        # Simulator probes: sampled retroactively at crossed virtual-time
        # boundaries, so they never change the fast-forward chunking, never
        # touch the RNG and never run when no ProbeConfig is installed.
        probe = _probes.current()
        probe_buf = None
        if probe is not None:
            probe_buf = _probes.ProbeBuffer(probe.capacity)
            probe_interval = probe.interval
            probe_next = probe_interval
            probe_t0 = time.time()
            probe_bits = np.zeros(self._num_stations, dtype=np.int64)
            probe_bits_prev = np.zeros(self._num_stations, dtype=np.int64)
            probe_busy = 0.0

            def probe_sample(boundary: float) -> None:
                nonlocal probe_busy
                values = _probes.controller_series(self._controller)
                for i, policy in enumerate(self._policies):
                    values.update(_probes.station_series(i, policy))
                delta = probe_bits - probe_bits_prev
                for i in range(self._num_stations):
                    values[f"tput_mbps[{i}]"] = delta[i] / probe_interval / 1e6
                values["throughput_mbps"] = (
                    int(delta.sum()) / probe_interval / 1e6
                )
                # Busy time is attributed at slot granularity: the slot that
                # crosses a boundary counts fully against the window it
                # started in, so the fraction may slightly exceed 1.
                values["busy_frac"] = probe_busy / probe_interval
                for i, queue in enumerate(self._queues):
                    values[f"queue[{i}]"] = float(len(queue))
                probe_buf.sample(boundary, values)
                probe_bits_prev[:] = probe_bits
                probe_busy = 0.0

        now = 0.0
        measuring = warmup == 0.0
        idle_run = 0
        # Reporting state.
        report_at = self._report_interval if self._report_interval else math.inf
        bits_at_last_report = 0
        cumulative_bits = 0
        # Controller tick state (segments must close even with zero traffic).
        tick_interval = self._controller.tick_interval
        next_tick = tick_interval if tick_interval else math.inf

        def frame_departed(station: int) -> None:
            """Closed-loop clocking on any departure (delivery or retry
            discard): release the next window frame, record finished flows.
            No-op for open-loop workloads."""
            if traffic is None or not traffic.is_closed_loop:
                return
            flow_done[station] += 1
            if flow_left[station] > 0:
                flow_left[station] -= 1
                self._queues[station].offer(now)
                has_frame[station] = True
                if measuring:
                    metrics.record_arrival()
            if flow_total and flow_done[station] == flow_total:
                metrics.record_flow_completion(station, now)

        while now < end_time:
            # Activity changes take effect at their breakpoint times.
            while (next_change_index < len(change_times)
                   and now >= change_times[next_change_index]):
                new_active = self._activity.active_count(
                    change_times[next_change_index]
                )
                if traffic is not None and new_active < active:
                    # Leaving stations must not carry queued frames into
                    # their next join: flush and account them as drops.
                    for station in range(new_active, active):
                        flushed = self._queues[station].flush()
                        has_frame[station] = False
                        if flushed and measuring:
                            metrics.record_drop(flushed)
                self._handle_activity_change(active, new_active, counters)
                active = new_active
                next_change_index += 1

            if not measuring and now >= warmup:
                measuring = True
                metrics.reset()
                bits_at_last_report = 0
                cumulative_bits = 0
                # Anchor the reporting grid at the warmup boundary itself:
                # `now` may have overshot it by part of a busy slot, and that
                # overshoot must count against the first reporting interval or
                # the entire timeline shifts late and the final sample (at
                # warmup + duration) is silently dropped.
                if self._report_interval:
                    report_at = self._report_interval - (now - warmup)
                else:
                    report_at = math.inf

            if traffic is not None:
                # Clamp at the horizon so the processed set is exactly the
                # arrivals inside the run, matching the batched backend's
                # composition-independent accounting.
                self._process_arrivals(streams, min(now, end_time), active,
                                       measuring, metrics, has_frame)

            window = counters[:active]
            if traffic is None:
                min_counter = int(window.min()) if active > 0 else 0
                contenders = None
            else:
                # Only stations with a queued frame contend; parked stations
                # keep their (frozen) counter until an arrival rejoins them.
                contenders = has_frame[:active]
                if contenders.any():
                    min_counter = int(window[contenders].min())
                else:
                    min_counter = _NO_CONTENDER
            if min_counter > 0:
                # Fast-forward through consecutive idle slots, but never past
                # the next activity change, arrival, report boundary or end
                # of run.
                limit_slots = min_counter
                next_boundary = min(end_time, next_tick)
                if streams:
                    next_boundary = min(
                        next_boundary,
                        min(stream.next_time for stream in streams),
                    )
                if next_change_index < len(change_times):
                    next_boundary = min(next_boundary, change_times[next_change_index])
                if measuring:
                    next_boundary = min(next_boundary, now + report_at)
                if not measuring:
                    next_boundary = min(next_boundary, warmup)
                slots_to_boundary = max(int(math.ceil((next_boundary - now) / sigma)), 1)
                advance = min(limit_slots, slots_to_boundary)
                if traffic is None:
                    window -= advance
                else:
                    window[contenders] -= advance
                now += advance * sigma
                idle_run += advance
                if tel_on:
                    t_idle_ffwd += 1
                    t_virtual_slots += advance
                if probe_buf is not None:
                    while now >= probe_next:
                        probe_sample(probe_next)
                        probe_next += probe_interval
                if measuring:
                    metrics.record_idle_slots(advance)
                    report_at -= advance * sigma
                    if report_at <= 0:
                        report_at = self._sample_reports(
                            metrics, now, cumulative_bits, bits_at_last_report,
                            report_at,
                        )
                        bits_at_last_report = cumulative_bits
                if now >= next_tick:
                    # Close a starved measurement segment (the paper's
                    # beacon-carried variant) and re-broadcast on updates.
                    if self._controller.on_tick(now):
                        self._apply_control_to_all(self._controller.control())
                    next_tick += tick_interval or math.inf
                continue

            if now >= next_tick:
                if self._controller.on_tick(now):
                    self._apply_control_to_all(self._controller.control())
                next_tick += tick_interval or math.inf

            if traffic is None:
                transmitters = np.flatnonzero(window == 0)
            else:
                transmitters = np.flatnonzero((window == 0) & contenders)
            success = transmitters.size == 1
            if success and self._frame_error_rate > 0.0:
                success = self._rng.random() >= self._frame_error_rate
            slot_duration = ts if success else tc
            if self._observers:
                for policy in self._observers:
                    policy.observe_transmission(idle_run)
            idle_run = 0
            now += slot_duration
            if tel_on:
                t_busy += 1
                t_virtual_slots += 1
            if probe_buf is not None:
                probe_busy += slot_duration
                while now >= probe_next:
                    probe_sample(probe_next)
                    probe_next += probe_interval
            if measuring:
                metrics.record_busy_period()
                report_at -= slot_duration

            # Non-transmitting stations decrement their counter once per
            # virtual slot, busy or idle (Bianchi's renewal model, which is
            # also what Eq. 2-3 assume).  The real-standard "freeze during
            # busy periods" behaviour is modelled by the event-driven
            # simulator instead.
            waiting = window > 0 if traffic is None else (window > 0) & contenders
            if success:
                station = int(transmitters[0])
                if retry_counts is not None:
                    retry_counts[station] = 0
                if traffic is not None:
                    # The delivered frame leaves the FIFO; the station parks
                    # if nothing else is queued.
                    delay = self._queues[station].pop(now)
                    if measuring:
                        metrics.record_queue_delay(delay)
                    frame_departed(station)
                    has_frame[station] = len(self._queues[station]) > 0
                if measuring:
                    metrics.record_success(station, payload)
                    cumulative_bits += payload
                if probe_buf is not None:
                    probe_bits[station] += payload
                self._controller.on_packet_received(station, payload, now)
                control = self._controller.control()
                if control:
                    if self._broadcast_control:
                        self._apply_control_to_all(control)
                    else:
                        self._policies[station].apply_control(control)
                counters[station] = self._policies[station].on_success(self._rng)
            else:
                for station in transmitters:
                    station = int(station)
                    if measuring:
                        metrics.record_failure(station)
                    if retry_counts is not None:
                        retry_counts[station] += 1
                        if retry_counts[station] >= retry_limit:
                            # 802.11 retry limit: discard the frame, reset
                            # the contention window (a success draw) and
                            # move on to the next frame, if any.
                            retry_counts[station] = 0
                            if tel_on:
                                t_discards += 1
                            if measuring:
                                metrics.record_retry_discard()
                            if traffic is not None:
                                self._queues[station].pop(now)
                                frame_departed(station)
                                has_frame[station] = (
                                    len(self._queues[station]) > 0
                                )
                            counters[station] = (
                                self._policies[station].on_success(self._rng)
                            )
                            continue
                    counters[station] = self._policies[station].on_failure(self._rng)
            window[waiting] -= 1

            if measuring and report_at <= 0:
                report_at = self._sample_reports(
                    metrics, now, cumulative_bits, bits_at_last_report, report_at
                )
                bits_at_last_report = cumulative_bits

        if traffic is not None:
            # Final drain: count the tail arrivals between the last loop
            # iteration's clock and the horizon (the busy slot that ended
            # the run may have jumped past several of them).
            self._process_arrivals(streams, end_time, active, measuring,
                                   metrics, has_frame)
        if tel_on:
            tel.counters("slotted", {
                "virtual_slots": t_virtual_slots,
                "idle_fast_forwards": t_idle_ffwd,
                "busy_slots": t_busy,
                "retry_discards": t_discards,
                "num_stations": self._num_stations,
            })
        if probe_buf is not None:
            record = _probes.probe_record("slotted", probe_buf, probe,
                                          probe_t0, seed=self._seed)
            if record is not None:
                tel.emit(record)
        extra: Dict[str, object] = {
            "scheme": self._scheme.name,
            "simulator": "slotted",
            "num_stations": self._num_stations,
            "warmup": warmup,
        }
        if traffic is not None:
            extra["traffic"] = traffic.kind
            extra["offered_rate_fps"] = traffic.mean_rate_fps
            extra["queued_frames"] = sum(len(q) for q in self._queues)
        return metrics.result(duration=duration, extra=extra)

    # ------------------------------------------------------------------
    @property
    def queue_lengths(self) -> Tuple[int, ...]:
        """Per-station FIFO occupancy (empty tuple for saturated runs)."""
        return tuple(len(queue) for queue in self._queues)

    def _process_arrivals(
        self,
        streams: List[ArrivalStream],
        now: float,
        active: int,
        measuring: bool,
        metrics: MetricsCollector,
        has_frame: np.ndarray,
    ) -> None:
        """Offer every arrival at or before ``now`` to its station's queue.

        Arrivals to schedule-inactive stations and to full queues are
        dropped; a 0 -> 1 queue transition rejoins the station (its frozen
        counter re-enters the contention minimum on the next virtual slot).
        """
        for station, stream in enumerate(streams):
            while stream.next_time <= now:
                arrival = stream.advance()
                if measuring:
                    metrics.record_arrival()
                if station >= active or not self._queues[station].offer(arrival):
                    if measuring:
                        metrics.record_drop()
                else:
                    has_frame[station] = True

    def _apply_control_to_all(self, control: Dict[str, float]) -> None:
        if not control:
            return
        for policy in self._policies:
            policy.apply_control(control)

    def _handle_activity_change(self, old_active: int, new_active: int,
                                counters: np.ndarray) -> None:
        """Stations joining the network draw a fresh backoff and control."""
        if new_active <= old_active:
            return
        control = self._controller.control()
        for station in range(old_active, new_active):
            policy = self._policies[station]
            if control:
                policy.apply_control(control)
            counters[station] = policy.initial_backoff(self._rng)

    def _sample_reports(self, metrics: MetricsCollector, now: float,
                        cumulative_bits: int, bits_at_last_report: int,
                        deficit: float = 0.0) -> float:
        """Record timeline samples and return the refreshed report countdown.

        ``deficit`` is the (non-positive) remainder of the countdown at the
        moment the sample fired; crediting it against the next interval keeps
        the samples anchored to the ``warmup + k * report_interval`` grid
        instead of drifting later by one busy slot per sample.
        """
        interval = self._report_interval or 0.0
        delta_bits = cumulative_bits - bits_at_last_report
        metrics.record_throughput_sample(now, delta_bits / interval if interval else 0.0)
        control_value = _primary_control_value(self._controller.control())
        if control_value is not None:
            metrics.record_control_sample(now, control_value)
        return interval + deficit


def run_slotted(
    scheme: Scheme,
    num_stations: int,
    duration: float,
    warmup: float = 0.0,
    phy: Optional[PhyParameters] = None,
    seed: int = 0,
    **kwargs,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SlottedSimulator`."""
    simulator = SlottedSimulator(
        scheme, num_stations=num_stations, phy=phy, seed=seed, **kwargs
    )
    return simulator.run(duration=duration, warmup=warmup)
