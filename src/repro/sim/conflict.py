"""Conflict-matrix vectorized simulator for arbitrary sensing graphs.

:mod:`repro.sim.batched` vectorizes *fully connected* cells as a renewal
process over virtual slots — a model that is exact only when every station
observes the same channel.  Hidden-node topologies (Figures 4-7, the largest
grids of the reproduction) break that assumption: stations count down
*through* the transmissions of stations they cannot sense, frames overlap
partially in continuous time, and collisions happen at the AP between
transmitters that never deferred to each other.

This module vectorizes that regime too.  Each cell carries a boolean
station x station **sensing matrix** (derived from
:meth:`repro.topology.graph.ConnectivityGraph.sensing_matrix`), and the
simulator advances **many cells at once** by jumping every cell to its own
next event (a transmission start or end, a controller tick, a reporting
boundary), in integer nanoseconds exactly like the scalar event-driven
simulator.  Carrier sense is a masked matrix product (``sensing @
transmitting``), collision resolution follows the paper's Section II rule
(any temporal overlap between two data frames corrupts both, regardless of
where the transmitters are — the "interference matrix" at the AP is
all-pairs), and freezing/resuming replicates the per-station MAC state
machine of :mod:`repro.sim.node`: DIFS deferral, whole-slot freeze
accounting, and the committed-transmission rule (a countdown that expires at
the instant the channel turns busy still transmits).

The one deliberate simplification relative to the event-driven simulator is
the ACK: because a successful frame by definition overlapped no other data
frame, the channel is provably clear at its end, so the SIFS + ACK window
and the post-ACK DIFS are *scheduled eagerly* at the frame-end event instead
of being modelled as separate events (stations hidden from the transmitter
still consume the backoff slots that fit into the SIFS gap, and countdowns
committed inside the gap still fire).  This halves the event count; the only
divergence is the freeze instant of a station that senses a transmission
*started inside a SIFS gap* (16 us), which is statistically negligible and
covered by the cross-validation envelope.

Reproducibility contract
------------------------

Identical to :class:`~repro.sim.batched.BatchedSlottedSimulator`: each cell
owns a block-buffered :class:`~repro.sim.batched.CellStreams` generator, and
uniforms are consumed in an order that is a deterministic function of that
cell's own trajectory (fixed draw counts per event kind, fixed category
order inside an event instant, station order within a category).  A cell's
results are therefore bit-identical no matter which other cells share its
batch — topologies and station counts may differ freely inside one batch.

Results are statistically equivalent to :class:`repro.sim.simulation
.WlanSimulation` (the cross-validation oracle) but not bit-identical to it:
the random streams are consumed in a different order.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..phy.constants import NS_PER_SECOND, PhyParameters, seconds_to_ns
from ..telemetry import current as _telemetry
from ..telemetry import probes as _probes
from ..topology.graph import ConnectivityGraph
from ..traffic import ArrivalProcess, BatchedArrivals
from .batched import CellStreams, batchable_scheme, make_batched_system
from .metrics import SimulationResult, StationStats

__all__ = [
    "BatchedConflictSimulator",
    "stack_sensing_matrices",
    "run_conflict",
]

#: Sentinel time for "no event scheduled"; far beyond any simulated horizon.
_NEVER = np.int64(2) ** 62


def stack_sensing_matrices(
    matrices: Sequence[np.ndarray],
    max_stations: Optional[int] = None,
) -> np.ndarray:
    """Pad per-cell sensing matrices into one ``(cells, S, S)`` array.

    ``matrices[c]`` is a square boolean matrix (station ``i`` senses station
    ``j``); cells may have different sizes.  Padded rows/columns are False,
    so padded stations sense nothing and are sensed by nobody.
    """
    if not matrices:
        raise ValueError("need at least one sensing matrix")
    sizes = []
    for matrix in matrices:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("sensing matrices must be square")
        sizes.append(matrix.shape[0])
    width = max(sizes) if max_stations is None else int(max_stations)
    if width < max(sizes):
        raise ValueError("max_stations is smaller than a cell's matrix")
    stacked = np.zeros((len(matrices), width, width), dtype=bool)
    for cell, matrix in enumerate(matrices):
        k = sizes[cell]
        stacked[cell, :k, :k] = np.asarray(matrix, dtype=bool)
    return stacked


class BatchedConflictSimulator:
    """Vectorized event-jump simulator over a batch of sensing-graph cells.

    All cells share the scheme (policy/controller banks), PHY, durations,
    frame error rate and reporting options; they differ in station count,
    topology (sensing matrix) and random seed — exactly the shape of one
    column of a hidden-node campaign grid.

    Parameters
    ----------
    policy_bank / controller_bank:
        Vectorized station policies and AP controller sized for this batch.
        Channel-observing policies must carry *per-station* observation
        state (``per_station_observations``), because stations of one cell
        see different channels on a general sensing graph.
    sensing:
        Boolean array of shape ``(cells, S, S)``; ``sensing[c, i, j]`` is
        True iff station ``i`` of cell ``c`` carrier-senses station ``j``'s
        transmissions.  Must be symmetric per cell; the diagonal is ignored
        (a station never senses its own transmission) and entries beyond
        each cell's station count must be False
        (:func:`stack_sensing_matrices` produces this layout).
    num_stations / seeds / duration / warmup / phy / frame_error_rate /
    report_interval:
        As in :class:`~repro.sim.batched.BatchedSlottedSimulator`.  Dynamic
        activity schedules are not supported on this backend.
    traffic:
        Optional :class:`~repro.traffic.ArrivalProcess` shared by every
        cell (``None``/saturated keeps the classic behaviour
        bit-identically).  Stations with empty queues park — their
        remaining backoff frozen, no transmission scheduled — and rejoin
        contention at their next frame arrival (DIFS first, exactly like a
        post-freeze resume).  Arrival draws come from separate per-cell
        salted streams, so the contention streams and their composition
        independence are untouched.
    """

    def __init__(
        self,
        policy_bank,
        controller_bank,
        sensing: np.ndarray,
        num_stations: Sequence[int],
        seeds: Sequence[int],
        duration: float,
        warmup: float = 0.0,
        phy: Optional[PhyParameters] = None,
        frame_error_rate: float = 0.0,
        report_interval: Optional[float] = None,
        scheme_name: Optional[str] = None,
        traffic: Optional[ArrivalProcess] = None,
    ) -> None:
        if len(num_stations) != len(seeds):
            raise ValueError("num_stations and seeds must have equal length")
        if not num_stations:
            raise ValueError("a batch needs at least one cell")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        if report_interval is not None and report_interval <= 0:
            raise ValueError("report_interval must be positive")
        if not 0.0 <= frame_error_rate < 1.0:
            raise ValueError("frame_error_rate must lie in [0, 1)")
        self._n = np.asarray(num_stations, dtype=np.int64)
        if np.any(self._n < 1):
            raise ValueError("every cell needs at least one station")
        sensing = np.asarray(sensing, dtype=bool)
        if sensing.ndim != 3 or sensing.shape[1] != sensing.shape[2]:
            raise ValueError("sensing must have shape (cells, S, S)")
        if sensing.shape[0] != self._n.size:
            raise ValueError("sensing and num_stations disagree on cell count")
        if sensing.shape[1] < int(self._n.max()):
            raise ValueError("sensing matrices are smaller than num_stations")
        if not np.array_equal(sensing, sensing.transpose(0, 2, 1)):
            raise ValueError("sensing matrices must be symmetric")
        exists = (np.arange(sensing.shape[1])[None, :] < self._n[:, None])
        pair_exists = exists[:, :, None] & exists[:, None, :]
        if np.any(sensing & ~pair_exists):
            raise ValueError(
                "sensing entries beyond a cell's station count must be False"
            )
        sensing = sensing.copy()
        diag = np.arange(sensing.shape[1])
        sensing[:, diag, diag] = False
        self._sensing = sensing
        self._bank = policy_bank
        if policy_bank.observes_channel and not getattr(
                policy_bank, "per_station_observations", False):
            raise ValueError(
                "channel-observing policy banks need per-station observation "
                "state on a sensing graph (per-cell observation assumes a "
                "fully connected cell)"
            )
        self._controller = controller_bank
        self._seeds = list(seeds)
        self._duration = float(duration)
        self._warmup = float(warmup)
        self._phy = phy or PhyParameters()
        self._fer = float(frame_error_rate)
        self._interval = report_interval
        self._scheme_name = scheme_name
        # The retry limit outlives the saturated -> None canonicalisation:
        # bounded retries are orthogonal to the arrival process.
        self._retry_limit = traffic.retry_limit if traffic is not None else None
        if traffic is not None and traffic.is_saturated:
            traffic = None
        self._traffic = traffic

    # ------------------------------------------------------------------
    def run(self) -> List[SimulationResult]:
        """Simulate every cell for ``warmup + duration`` seconds."""
        bank = self._bank
        controller = self._controller
        phy = self._phy
        sigma = np.int64(phy.slot_time_ns)
        difs = np.int64(phy.difs_ns)
        sifs = np.int64(phy.sifs_ns)
        data_ns = np.int64(phy.data_tx_time_ns)
        ack_ns = np.int64(phy.ack_tx_time_ns)
        payload = phy.payload_bits
        warmup_ns = np.int64(seconds_to_ns(self._warmup))
        end_ns = np.int64(seconds_to_ns(self._warmup + self._duration))
        interval = self._interval
        interval_ns = np.int64(seconds_to_ns(interval)) if interval else None
        fer = self._fer
        fer_on = fer > 0.0

        n = self._n
        num_cells = n.size
        max_n = int(self._sensing.shape[1])
        st_range = np.arange(max_n)
        exists = st_range[None, :] < n[:, None]
        # uint8 views feed the carrier-sense matrix products (bool matmul is
        # unsupported; station counts are far below the uint8 overflow line).
        sense_u8 = self._sensing.astype(np.uint8)

        k_init = bank.draws_initial
        k_succ = bank.draws_success
        k_fail = bank.draws_failure
        draws = max(k_init, k_succ, k_fail)
        # Block sizes depend on each cell's own parameters only — refill
        # points are part of the cell's random-stream trajectory (see
        # CellStreams).
        blocks = np.maximum(4096, 8 * n * draws)
        streams = CellStreams(self._seeds, block=blocks)
        observes = bank.observes_channel
        adaptive = controller.primary_control() is not None or (
            controller.tick_interval is not None
        )
        tick = controller.tick_interval
        tick_ns = np.int64(seconds_to_ns(tick)) if tick else None

        # Per-(cell, station) MAC state.  A station is in exactly one of:
        # counting/DIFS (start_at finite), frozen-deferring (start_at NEVER,
        # not transmitting) or transmitting (tx_end finite).  ``remaining``
        # holds the backoff slots not yet counted; it is only debited when a
        # countdown freezes, mirroring StationProcess.
        remaining = np.zeros((num_cells, max_n), dtype=np.int64)
        counter_start = np.full((num_cells, max_n), _NEVER, dtype=np.int64)
        start_at = np.full((num_cells, max_n), _NEVER, dtype=np.int64)
        txing = np.zeros((num_cells, max_n), dtype=bool)
        tx_end = np.full((num_cells, max_n), _NEVER, dtype=np.int64)
        corrupt = np.zeros((num_cells, max_n), dtype=bool)
        busy = np.zeros((num_cells, max_n), dtype=bool)
        if observes:
            obs_idle = np.zeros((num_cells, max_n), dtype=np.int64)

        # Traffic state lives in its own per-cell salted streams, so the
        # contention stream consumption is identical whether or not the
        # workload is saturated.
        traffic = self._traffic
        arrivals = (None if traffic is None
                    else BatchedArrivals(traffic, self._seeds, n, max_n))

        # Bounded-retry state (allocated only when a limit is configured, so
        # the default infinite-retry path is untouched).
        retry_limit = self._retry_limit
        if retry_limit is not None:
            retry_cnt = np.zeros((num_cells, max_n), dtype=np.int64)
            retry_disc = np.zeros(num_cells, dtype=np.int64)
        else:
            retry_cnt = None
            retry_disc = None

        # Initial backoffs for every station; everyone then waits DIFS from
        # t = 0, exactly like freshly activated StationProcess instances.
        init_cells, init_st = np.nonzero(exists)
        base = streams.claim(n * k_init)
        offsets = base[init_cells] + init_st * k_init
        remaining[init_cells, init_st] = bank.initial_draw(
            init_cells, init_st, streams.gather(init_cells, offsets, k_init)
        )
        counter_start[exists] = difs
        start_at[exists] = difs + remaining[exists] * sigma
        if traffic is not None:
            # Open-loop queues start empty: those stations park with the
            # drawn backoff frozen until the first arrival rejoins them.
            # Closed-loop windows prefill their queues, so stations holding
            # a frame keep the saturated-style DIFS schedule from t = 0.
            park = exists & ~arrivals.has_frame()
            counter_start[park] = _NEVER
            start_at[park] = _NEVER

        # Per-cell clocks, metrics and channel-occupancy accounting.
        now = np.zeros(num_cells, dtype=np.int64)
        measuring = np.full(num_cells, self._warmup == 0.0)
        all_measuring = bool(measuring.all())
        successes = np.zeros((num_cells, max_n), dtype=np.int64)
        failures = np.zeros((num_cells, max_n), dtype=np.int64)
        active_cnt = np.zeros(num_cells, dtype=np.int64)
        busy_since = np.zeros(num_cells, dtype=np.int64)
        busy_total = np.zeros(num_cells, dtype=np.int64)
        busy_periods = np.zeros(num_cells, dtype=np.int64)
        cum_bits = np.zeros(num_cells, dtype=np.int64)
        bits_last = np.zeros(num_cells, dtype=np.int64)
        throughput_tl: List[List[Tuple[float, float]]] = [
            [] for _ in range(num_cells)
        ]
        control_tl: List[List[Tuple[float, float]]] = [
            [] for _ in range(num_cells)
        ]
        # ``next_mark`` is the next measurement boundary: the warm-up
        # crossing first, then every reporting instant (exact times, so no
        # countdown-deficit bookkeeping is needed).
        if warmup_ns > 0:
            next_mark = np.full(num_cells, warmup_ns)
        elif interval_ns:
            next_mark = np.full(num_cells, interval_ns)
        else:
            next_mark = np.full(num_cells, _NEVER)
        next_tick = np.full(num_cells, tick_ns if tick_ns else _NEVER)
        resume = np.zeros((num_cells, max_n), dtype=bool)

        # Phase flags let the hot loop skip measurement bookkeeping before
        # the warm-up boundary (the bulk of every adaptive run).  The state
        # machines themselves (claims, draws, controller updates, the eager
        # ACK scheduling) always run — only metric recording is gated.
        none_measuring = not measuring.any()
        ack_skip = np.int64(ack_ns + difs)
        any_resume = False

        # Loop-level telemetry: plain-int counters behind a hoisted enabled
        # flag; they never touch the random streams, so results are
        # bit-identical with telemetry on or off.  Each carrier-sense
        # recompute is one (cells x stations x stations) boolean matrix
        # product, so its work is tracked as ``recomputes x cells x S^2``.
        tel = _telemetry()
        tel_on = tel.enabled
        t_iterations = t_starts = t_ends = t_sense = t_discards = 0

        # Simulator probes: boundaries are drained right after each event
        # jump, *before* the instant's events are processed, so each sample
        # sees the state the cell carried across the boundary.  Probe
        # boundaries never enter the jump minimum and the channel-busy
        # bookkeeping below is kept separate from the warm-up-reset
        # measurement accounting, so trajectories are unchanged.
        probe = _probes.current()
        probe_bufs: Optional[List[_probes.ProbeBuffer]] = None
        if probe is not None:
            probe_interval_ns = np.int64(seconds_to_ns(probe.interval))
            probe_bufs = [_probes.ProbeBuffer(probe.capacity)
                          for _ in range(num_cells)]
            probe_next = np.full(num_cells, probe_interval_ns, dtype=np.int64)
            probe_t0 = time.time()
            probe_bits = np.zeros((num_cells, max_n), dtype=np.int64)
            probe_bits_prev = np.zeros((num_cells, max_n), dtype=np.int64)
            p_busy_since = np.zeros(num_cells, dtype=np.int64)
            p_busy_total = np.zeros(num_cells, dtype=np.int64)
            p_busy_snap = np.zeros(num_cells, dtype=np.int64)

            def probe_drain() -> None:
                due_mask = now >= probe_next
                if not due_mask.any():
                    return
                due = np.flatnonzero(due_mask)
                bank_state = bank.probe_state()
                ctrl_state = controller.probe_state()
                queues = (arrivals.queue_lengths
                          if arrivals is not None else None)
                p_interval_s = probe_interval_ns / NS_PER_SECOND
                for cell in due:
                    cell = int(cell)
                    stations = int(n[cell])
                    while now[cell] >= probe_next[cell]:
                        boundary = int(probe_next[cell])
                        busy_at = int(p_busy_total[cell])
                        if active_cnt[cell] > 0:
                            busy_at += boundary - int(p_busy_since[cell])
                        values = _probes.flatten_bank_state(
                            bank_state, cell, stations)
                        values.update(_probes.flatten_bank_state(
                            ctrl_state, cell, stations))
                        delta = probe_bits[cell] - probe_bits_prev[cell]
                        for i in range(stations):
                            values[f"tput_mbps[{i}]"] = (
                                delta[i] / p_interval_s / 1e6
                            )
                        values["throughput_mbps"] = (
                            int(delta[:stations].sum()) / p_interval_s / 1e6
                        )
                        values["busy_frac"] = (
                            (busy_at - int(p_busy_snap[cell]))
                            / float(probe_interval_ns)
                        )
                        if queues is not None:
                            for i in range(stations):
                                values[f"queue[{i}]"] = float(queues[cell, i])
                        probe_bufs[cell].sample(boundary / NS_PER_SECOND,
                                                values)
                        p_busy_snap[cell] = busy_at
                        probe_bits_prev[cell] = probe_bits[cell]
                        probe_next[cell] += probe_interval_ns

        while True:
            if not (now < end_ns).any():
                break
            if tel_on:
                t_iterations += 1

            # Jump every cell to its own next event instant.  Finished cells
            # have no schedulable event at or before end_ns, so the clamp
            # parks them exactly there.
            t = np.minimum(start_at.min(axis=1), tx_end.min(axis=1))
            np.minimum(t, next_tick, out=t)
            np.minimum(t, next_mark, out=t)
            if traffic is not None:
                # Pending frame arrivals are event instants too: a parked
                # station must rejoin at (the ns ceiling of) its arrival.
                # The extra nanosecond guarantees progress: float rounding
                # of ``next * 1e9`` may land just below the true product,
                # and a bare ceiling would then jump to an instant whose
                # seconds value still compares below the arrival time.
                next_arrival = arrivals.next_min()
                arrival_ns = np.where(
                    np.isfinite(next_arrival),
                    np.ceil(next_arrival * NS_PER_SECOND) + 1.0,
                    float(_NEVER),
                ).astype(np.int64)
                np.minimum(t, arrival_ns, out=t)
            np.minimum(t, end_ns, out=t)
            now = t
            now_col = now[:, None]
            if probe_bufs is not None:
                probe_drain()

            # -- warm-up crossing (exact, the boundary bounds the jump) ----
            if not all_measuring:
                cross = ~measuring & (now >= warmup_ns)
                if cross.any():
                    measuring |= cross
                    none_measuring = False
                    successes[cross] = 0
                    failures[cross] = 0
                    cum_bits[cross] = 0
                    bits_last[cross] = 0
                    busy_total[cross] = 0
                    mid_busy = cross & (active_cnt > 0)
                    busy_periods[cross] = 0
                    busy_periods[mid_busy] = 1
                    busy_since[mid_busy] = now[mid_busy]
                    if traffic is not None:
                        arrivals.reset_measurement(cross)
                    if retry_disc is not None:
                        retry_disc[cross] = 0
                    next_mark[cross] = (
                        warmup_ns + interval_ns if interval_ns else _NEVER
                    )
                    all_measuring = bool(measuring.all())

            # -- controller ticks (finished cells have next_tick past
            #    end_ns, so no liveness mask is needed) --------------------
            if tick_ns is not None:
                due_tick = now >= next_tick
                if due_tick.any():
                    controller.on_tick(due_tick, now / NS_PER_SECOND)
                    next_tick[due_tick] += tick_ns

            # -- frame arrivals (unsaturated workloads) -------------------
            if traffic is not None:
                rejoined = arrivals.advance(now / NS_PER_SECOND, exists)
                if rejoined.any():
                    # A rejoining station resumes exactly like after a
                    # freeze: DIFS then its frozen countdown if its sensed
                    # channel is idle right now; otherwise it stays
                    # deferring and the next falling edge schedules it
                    # (the contention masks below include it from now on).
                    rc, rs = np.nonzero(rejoined & ~txing & ~busy)
                    counter_start[rc, rs] = now[rc] + difs
                    start_at[rc, rs] = (
                        counter_start[rc, rs] + remaining[rc, rs] * sigma
                    )

            changed = False
            starters = None

            # -- data-frame ends ------------------------------------------
            ending = tx_end == now_col
            if ending.any():
                changed = True
                cnt_end = ending.sum(axis=1)
                if tel_on:
                    t_ends += int(cnt_end.sum())
                active_cnt -= cnt_end
                if probe_bufs is not None:
                    p_idle = (cnt_end > 0) & (active_cnt == 0)
                    p_busy_total[p_idle] += (
                        now[p_idle] - p_busy_since[p_idle]
                    )
                if not none_measuring:
                    idle_now = (cnt_end > 0) & (active_cnt == 0)
                    busy_total[idle_now] += (
                        now[idle_now] - busy_since[idle_now]
                    )
                txing &= ~ending
                tx_end[ending] = _NEVER

                e_cells, e_st = np.nonzero(ending)
                fail_flat = corrupt[e_cells, e_st]
                if fer_on:
                    # One channel-error draw per finished frame, corrupted or
                    # not (fixed consumption keeps the stream deterministic).
                    base = streams.claim(cnt_end)
                    rank = (np.arange(e_cells.size)
                            - np.searchsorted(e_cells, e_cells))
                    u = streams.buffer[e_cells, base[e_cells] + rank]
                    fail_flat = fail_flat | (u < fer)
                corrupt[e_cells, e_st] = False

                if fail_flat.any():
                    f_cells = e_cells[fail_flat]
                    f_st = e_st[fail_flat]
                    if not none_measuring:
                        failures[f_cells, f_st] += measuring[f_cells]
                    counts = np.bincount(
                        f_cells, minlength=num_cells
                    ) * k_fail
                    base = streams.claim(counts)
                    # nonzero order is row-major, so f_cells is sorted and
                    # the within-cell rank falls out of a searchsorted.
                    frank = (np.arange(f_cells.size)
                             - np.searchsorted(f_cells, f_cells))
                    offs = base[f_cells] + frank * k_fail
                    if retry_cnt is None:
                        remaining[f_cells, f_st] = bank.failure_draw(
                            f_cells, f_st,
                            streams.gather(f_cells, offs, k_fail),
                        )
                        # The transmitter learns the failure now (no ACK) and
                        # re-enters contention after the busy recompute below.
                        resume[f_cells, f_st] = True
                    else:
                        # Bounded retries: the failure claim above is made
                        # for *every* loser (fixed consumption keeps the
                        # stream deterministic) but only surviving frames
                        # use it; a discarding station drops its frame,
                        # resets its retry chain and redraws from a fresh
                        # success-claim, exactly like 802.11's CW reset
                        # after max retries.
                        retry_cnt[f_cells, f_st] += 1
                        disc = retry_cnt[f_cells, f_st] >= retry_limit
                        keep = ~disc
                        kc, ks = f_cells[keep], f_st[keep]
                        remaining[kc, ks] = bank.failure_draw(
                            kc, ks, streams.gather(kc, offs[keep], k_fail)
                        )
                        resume[kc, ks] = True
                        if disc.any():
                            dc, ds = f_cells[disc], f_st[disc]
                            retry_cnt[dc, ds] = 0
                            if tel_on:
                                t_discards += int(np.count_nonzero(disc))
                            if all_measuring:
                                np.add.at(retry_disc, dc, 1)
                            elif not none_measuring:
                                np.add.at(retry_disc, dc,
                                          measuring[dc].astype(np.int64))
                            if traffic is not None:
                                arrivals.pop_discard(dc, ds,
                                                     now / NS_PER_SECOND)
                            counts2 = np.bincount(
                                dc, minlength=num_cells
                            ) * k_succ
                            base2 = streams.claim(counts2)
                            drank = (np.arange(dc.size)
                                     - np.searchsorted(dc, dc))
                            remaining[dc, ds] = bank.success_draw(
                                dc, ds,
                                streams.gather(
                                    dc, base2[dc] + drank * k_succ, k_succ
                                ),
                            )
                            if traffic is not None:
                                # The discard may have emptied the queue:
                                # only stations still holding a frame
                                # re-enter contention.
                                resume[dc, ds] = (
                                    arrivals.has_frame()[dc, ds]
                                )
                            else:
                                resume[dc, ds] = True
                    any_resume = True

                if not fail_flat.all():
                    # At most one clean frame can end per cell per instant
                    # (two frames ending together overlapped, hence failed).
                    succ_flat = ~fail_flat
                    s_cells = e_cells[succ_flat]
                    s_st = e_st[succ_flat]
                    if retry_cnt is not None:
                        retry_cnt[s_cells, s_st] = 0
                    if traffic is not None:
                        # The delivered frame leaves the winner's FIFO
                        # (exact per-frame delay).  The pop precedes the
                        # eager reschedule below, so an emptied winner is
                        # excluded from it and parks.
                        arrivals.pop_success(s_cells, s_st,
                                             now / NS_PER_SECOND)
                    if probe_bufs is not None:
                        probe_bits[s_cells, s_st] += payload
                    if not none_measuring:
                        meas = measuring[s_cells]
                        successes[s_cells, s_st] += meas
                        if interval_ns:
                            cum_bits[s_cells] += payload * meas
                    smask = np.zeros(num_cells, dtype=bool)
                    smask[s_cells] = True
                    if adaptive:
                        controller.on_packet_received(
                            smask, now / NS_PER_SECOND
                        )
                    counts = np.zeros(num_cells, dtype=np.int64)
                    counts[s_cells] = k_succ
                    base = streams.claim(counts)
                    remaining[s_cells, s_st] = bank.success_draw(
                        s_cells, s_st,
                        streams.gather(s_cells, base[s_cells], k_succ),
                    )
                    # Eager SIFS + ACK + DIFS scheduling: the channel of a
                    # success cell is provably clear, so every station's next
                    # countdown instant is known now.  Countdowns committed
                    # inside the SIFS gap (start_at <= gap) still fire;
                    # everyone else — counting, DIFS-waiting or frozen —
                    # freezes at the ACK onset and resumes DIFS after the
                    # ACK.  A frozen station's counter_start is the _NEVER
                    # sentinel, which drives ``elapsed`` hugely negative, so
                    # one shared max(..., 0) handles every case.
                    gap = np.full(num_cells, _NEVER)
                    gap[s_cells] = now[s_cells] + sifs
                    resched = (exists & smask[:, None]
                               & (start_at > gap[:, None]))
                    if traffic is not None:
                        # Parked stations have nothing to send: leave their
                        # schedule at the _NEVER sentinel.
                        resched &= arrivals.has_frame()
                    rc, rs = np.nonzero(resched)
                    elapsed = np.minimum(
                        np.maximum((gap[rc] - counter_start[rc, rs]) // sigma,
                                   0),
                        remaining[rc, rs],
                    )
                    remaining[rc, rs] -= elapsed
                    if observes:
                        obs_idle[rc, rs] += elapsed
                    resume_base = gap[rc] + ack_skip
                    counter_start[rc, rs] = resume_base
                    start_at[rc, rs] = (
                        resume_base + remaining[rc, rs] * sigma
                    )
                    # The channel is clear: clear the stored busy view so the
                    # generic edge pass below does not re-schedule the cell's
                    # stations over the eager post-ACK schedule.
                    busy[smask] = False

            # -- data-frame starts ----------------------------------------
            start_mask = start_at == now_col
            if start_mask.any():
                changed = True
                starters = start_mask
                n_start = start_mask.sum(axis=1)
                if tel_on:
                    t_starts += int(n_start.sum())
                stc, sts = np.nonzero(start_mask)
                if observes:
                    # A station observes its own transmission: the idle run
                    # plus the slots of the final countdown stint.
                    bank.observe_station_transmissions(
                        stc, sts, obs_idle[stc, sts] + remaining[stc, sts]
                    )
                    obs_idle[stc, sts] = 0
                txing |= start_mask
                tx_end[stc, sts] = now[stc] + data_ns
                start_at[stc, sts] = _NEVER
                counter_start[stc, sts] = _NEVER
                # Any temporal overlap between data frames corrupts every
                # frame in the air (the paper's all-pairs interference rule).
                collide = (active_cnt + n_start >= 2) & (n_start > 0)
                if collide.any():
                    corrupt |= txing & collide[:, None]
                if probe_bufs is not None:
                    p_fresh = (active_cnt == 0) & (n_start > 0)
                    p_busy_since[p_fresh] = now[p_fresh]
                if not none_measuring:
                    fresh = (active_cnt == 0) & (n_start > 0)
                    busy_since[fresh] = now[fresh]
                    busy_periods[fresh] += 1
                elif warmup_ns > 0:
                    # Only the "busy since" anchor matters pre-warm-up (the
                    # totals are reset at the crossing).
                    fresh = (active_cnt == 0) & (n_start > 0)
                    busy_since[fresh] = now[fresh]
                active_cnt += n_start

            # -- carrier-sense recompute and freeze/resume edges ----------
            if changed:
                if tel_on:
                    t_sense += 1
                busy_cnt = sense_u8 @ txing.view(np.uint8)[:, :, None]
                new_busy = busy_cnt[:, :, 0] > 0
                contend = exists & ~txing
                if any_resume:
                    contend &= ~resume
                rising = contend & new_busy & ~busy
                if rising.any():
                    # Freeze: debit the whole slots the countdown consumed
                    # (stations waiting out DIFS have a future counter_start,
                    # so the floor clamps their debit to zero).
                    rc, rs = np.nonzero(rising)
                    elapsed = np.minimum(
                        np.maximum((now[rc] - counter_start[rc, rs]) // sigma,
                                   0),
                        remaining[rc, rs],
                    )
                    remaining[rc, rs] -= elapsed
                    start_at[rc, rs] = _NEVER
                    counter_start[rc, rs] = _NEVER
                    if observes:
                        obs_idle[rc, rs] += elapsed
                        if starters is not None:
                            onset = sense_u8 @ starters.view(
                                np.uint8)[:, :, None]
                            saw_data = onset[rc, rs, 0] > 0
                            if saw_data.any():
                                oc, os_ = rc[saw_data], rs[saw_data]
                                bank.observe_station_transmissions(
                                    oc, os_, obs_idle[oc, os_]
                                )
                                obs_idle[oc, os_] = 0
                # Parked (empty-queue) stations stay in the rising/freeze
                # pass above — their debit clamps to zero, their schedule is
                # already the _NEVER sentinel, and they keep feeding
                # channel observations exactly like the event-driven
                # simulator's idle stations — but a falling edge must not
                # schedule a transmission for them: they rejoin on arrival.
                falling = contend & busy & ~new_busy
                if traffic is not None:
                    falling &= arrivals.has_frame()
                if falling.any():
                    fc, fs = np.nonzero(falling)
                    counter_start[fc, fs] = now[fc] + difs
                    start_at[fc, fs] = (
                        counter_start[fc, fs] + remaining[fc, fs] * sigma
                    )
                if any_resume:
                    r_idle = resume & ~new_busy
                    if r_idle.any():
                        rc, rs = np.nonzero(r_idle)
                        counter_start[rc, rs] = now[rc] + difs
                        start_at[rc, rs] = (
                            counter_start[rc, rs] + remaining[rc, rs] * sigma
                        )
                    # Deferring resumers simply wait for their falling edge.
                    resume[:] = False
                    any_resume = False
                busy = new_busy

            # -- reporting boundaries (exact instants; finished cells have
            #    next_mark past end_ns) -----------------------------------
            if interval_ns and not none_measuring:
                due = measuring & (now >= next_mark)
                if due.any():
                    primary = controller.primary_control()
                    for cell in np.flatnonzero(due):
                        delta = int(cum_bits[cell] - bits_last[cell])
                        time_s = now[cell] / NS_PER_SECOND
                        throughput_tl[cell].append(
                            (time_s, delta / interval)
                        )
                        if primary is not None:
                            control_tl[cell].append(
                                (time_s, float(primary[cell]))
                            )
                        bits_last[cell] = cum_bits[cell]
                    next_mark[due] += interval_ns

        # Close the occupancy accounting for cells still busy at the end.
        still = active_cnt > 0
        busy_total[still] += end_ns - busy_since[still]
        if tel_on:
            tel.counters("conflict", {
                "loop_iterations": t_iterations,
                "frame_starts": t_starts,
                "frame_ends": t_ends,
                "sense_recomputes": t_sense,
                "sense_product_ops": t_sense * num_cells * max_n * max_n,
                "retry_discards": t_discards,
                "cells": num_cells,
                "max_stations": max_n,
            })
        if probe_bufs is not None:
            for cell in range(num_cells):
                record = _probes.probe_record(
                    "conflict", probe_bufs[cell], probe, probe_t0,
                    seed=self._seeds[cell], cell=cell,
                )
                if record is not None:
                    tel.emit(record)
        return self._build_results(successes, failures, busy_total,
                                   busy_periods, throughput_tl, control_tl,
                                   arrivals, retry_disc)

    # ------------------------------------------------------------------
    def _build_results(self, successes, failures, busy_total, busy_periods,
                       throughput_tl, control_tl,
                       arrivals: Optional[BatchedArrivals] = None,
                       retry_disc: Optional[np.ndarray] = None,
                       ) -> List[SimulationResult]:
        phy = self._phy
        payload = phy.payload_bits
        duration = self._duration
        station_idle = self._bank.station_observed_idle()
        results = []
        for cell in range(self._n.size):
            stations = int(self._n[cell])
            stats = tuple(
                StationStats(
                    station=i,
                    successes=int(successes[cell, i]),
                    failures=int(failures[cell, i]),
                    payload_bits=int(successes[cell, i]) * payload,
                    throughput_bps=int(successes[cell, i]) * payload / duration,
                )
                for i in range(stations)
            )
            cell_successes = int(successes[cell, :stations].sum())
            # Table III accounting, mirroring WlanSimulation's finalisation:
            # subtract the per-period framing overheads from the non-busy
            # time and express the contention idle time in backoff slots.
            busy_time_s = busy_total[cell] / NS_PER_SECOND
            overhead_s = (
                int(busy_periods[cell]) * phy.difs
                + cell_successes * (phy.sifs + phy.ack_tx_time)
            )
            idle_time_s = max(duration - busy_time_s - overhead_s, 0.0)
            block = self._sensing[cell, :stations, :stations]
            hidden_pairs = int((~block).sum() - stations) // 2
            extra: Dict[str, object] = {
                "simulator": "batched",
                "backend": "conflict-matrix",
                "num_stations": stations,
                "warmup": self._warmup,
                "hidden_pairs": hidden_pairs,
            }
            if self._scheme_name is not None:
                extra["scheme"] = self._scheme_name
            if station_idle is not None and not math.isnan(station_idle[cell]):
                extra["station_observed_idle"] = float(station_idle[cell])
            traffic_fields: Dict[str, object] = {}
            if arrivals is not None:
                traffic_fields = arrivals.annotate_result(cell, stations, extra)
            if retry_disc is not None:
                traffic_fields["retry_discards"] = int(retry_disc[cell])
            results.append(SimulationResult(
                duration=duration,
                station_stats=stats,
                total_throughput_bps=cell_successes * payload / duration,
                idle_slots=int(idle_time_s / phy.slot_time),
                busy_periods=int(busy_periods[cell]),
                throughput_timeline=tuple(throughput_tl[cell]),
                control_timeline=tuple(control_tl[cell]),
                extra=extra,
                **traffic_fields,
            ))
        return results


def run_conflict(
    kind: str,
    params: Dict[str, object],
    topologies: Sequence[ConnectivityGraph],
    seeds: Sequence[int],
    duration: float,
    warmup: float = 0.0,
    phy: Optional[PhyParameters] = None,
    **kwargs,
) -> List[SimulationResult]:
    """One-call convenience wrapper: derive matrices, build banks, run.

    ``topologies[c]`` supplies cell ``c``'s sensing graph; scheme ``kind`` /
    ``params`` use the :class:`~repro.experiments.campaign.SchemeSpec`
    vocabulary exactly like :func:`repro.sim.batched.run_batched`.
    """
    if len(topologies) != len(seeds):
        raise ValueError("topologies and seeds must have equal length")
    phy = phy or PhyParameters()
    if not batchable_scheme(kind, dict(params)):
        raise ValueError(f"scheme kind '{kind}' has no batched kernel")
    num_stations = [graph.num_stations for graph in topologies]
    sensing = stack_sensing_matrices(
        [graph.sensing_matrix() for graph in topologies]
    )
    policy_bank, controller_bank, name = make_batched_system(
        kind, dict(params), len(seeds), int(max(num_stations)), phy,
        station_observations=True,
    )
    simulator = BatchedConflictSimulator(
        policy_bank, controller_bank, sensing, num_stations, seeds,
        duration=duration, warmup=warmup, phy=phy, scheme_name=name, **kwargs,
    )
    return simulator.run()
