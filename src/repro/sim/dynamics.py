"""Dynamic-scenario support: time-varying number of active stations.

Figures 8-11 of the paper change the number of active stations at predefined
instants and watch the controllers re-converge.  An
:class:`ActivitySchedule` describes those step changes: at each breakpoint
time the first ``count`` stations are active and the rest are silent.

Both simulators understand the schedule; stations that become active draw a
fresh initial backoff, stations that become inactive simply stop contending.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = ["ActivitySchedule", "constant_activity", "step_activity"]


@dataclass(frozen=True)
class ActivitySchedule:
    """Piecewise-constant number of active stations.

    ``breakpoints`` is a sorted tuple of ``(time_s, active_count)``; the
    first entry must start at time 0.  ``active_count(t)`` returns the count
    in force at time ``t``.
    """

    breakpoints: Tuple[Tuple[float, int], ...]

    def __post_init__(self) -> None:
        if not self.breakpoints:
            raise ValueError("schedule needs at least one breakpoint")
        times = [t for t, _ in self.breakpoints]
        counts = [c for _, c in self.breakpoints]
        if times[0] != 0.0:
            raise ValueError("the first breakpoint must be at time 0")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("breakpoint times must be strictly increasing")
        if any(c < 1 for c in counts):
            raise ValueError("active counts must be at least 1")

    # ------------------------------------------------------------------
    @property
    def max_active(self) -> int:
        """Largest active count over the whole schedule (stations to allocate)."""
        return max(c for _, c in self.breakpoints)

    def active_count(self, time_s: float) -> int:
        """Number of active stations at time ``time_s``."""
        if time_s < 0:
            raise ValueError("time must be non-negative")
        times = [t for t, _ in self.breakpoints]
        index = bisect.bisect_right(times, time_s) - 1
        return self.breakpoints[index][1]

    def is_active(self, station: int, time_s: float) -> bool:
        """Whether station ``station`` is active at ``time_s``.

        Stations are activated in index order: the first ``count`` station
        ids are the active ones.
        """
        return station < self.active_count(time_s)

    def change_times(self) -> Tuple[float, ...]:
        """Times (excluding 0) at which the active count changes."""
        return tuple(t for t, _ in self.breakpoints[1:])

    def events_between(self, start_s: float, end_s: float) -> Tuple[Tuple[float, int], ...]:
        """Breakpoints with ``start_s < time <= end_s`` (for the slotted sim)."""
        return tuple(
            (t, c) for t, c in self.breakpoints if start_s < t <= end_s
        )


def constant_activity(num_stations: int) -> ActivitySchedule:
    """All ``num_stations`` stations active for the whole run."""
    if num_stations < 1:
        raise ValueError("num_stations must be at least 1")
    return ActivitySchedule(breakpoints=((0.0, num_stations),))


def step_activity(steps: Sequence[Tuple[float, int]]) -> ActivitySchedule:
    """Build a schedule from ``(time, count)`` pairs (first must be time 0)."""
    return ActivitySchedule(breakpoints=tuple((float(t), int(c)) for t, c in steps))
