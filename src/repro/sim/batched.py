"""SIMD-style batched slotted simulator for fully connected cells.

:class:`~repro.sim.slotted.SlottedSimulator` advances *one* fully connected
cell through its virtual-slot renewal process with a Python-level loop per
busy slot.  This module advances **many independent cells simultaneously**:
all per-station state lives in 2-D NumPy arrays (axis 0 = cell, axis 1 =
station) and each loop iteration performs one renewal step for *every* cell
at once — backoff countdown, idle fast-forward, collision/success
resolution, per-scheme contention-window updates, frame errors,
activity-schedule joins/leaves, controller ticks and timeline sampling.
Interpreter overhead is therefore paid once per virtual slot *per batch*
rather than per cell, which is what lets one machine sweep orders of
magnitude more (scheme x N x seed) cells per hour.

Reproducibility contract
------------------------

Each cell owns a private ``numpy.random.Generator`` seeded with the cell's
task seed (the same ``derive_seed`` values the campaign engine already
uses).  Uniform variates are drawn in fixed-size blocks per cell
(:class:`CellStreams`) and consumed in an order that is a deterministic
function of *that cell's own trajectory* (station order within a slot,
fixed draw counts per event kind — see :mod:`repro.mac.batched`).  As a
consequence a cell's results are bit-identical no matter which other cells
share its batch — the property the campaign planner relies on to group
tasks freely and that the Hypothesis suite checks.

Batched results are statistically equivalent to the scalar slotted
simulator (same renewal model, same policy/controller state machines,
identically distributed draws) but not bit-identical to it: the random
streams are consumed in a different order.  Hidden-node topologies are out
of scope for *this* renewal-slot simulator; the conflict-matrix simulator
in :mod:`repro.sim.conflict` vectorizes those (with the scalar event-driven
:mod:`repro.sim.simulation` as the cross-validation oracle).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.batched import (
    BatchedControllerBank,
    BatchedStaticBank,
    BatchedToraBank,
    BatchedWTopBank,
)
from ..mac.batched import (
    BatchedDcfBank,
    BatchedIdleSenseBank,
    BatchedPPersistentBank,
    BatchedPolicyBank,
    BatchedRandomResetBank,
    BatchedStationIdleSenseBank,
)
from ..phy.constants import PhyParameters
from ..telemetry import current as _telemetry
from ..telemetry import probes as _probes
from ..traffic import ArrivalProcess, BatchedArrivals
from .dynamics import ActivitySchedule
from .metrics import SimulationResult, StationStats

__all__ = [
    "CellStreams",
    "BatchedSlottedSimulator",
    "BATCHABLE_SCHEME_KINDS",
    "batchable_scheme",
    "make_batched_system",
    "run_batched",
]

#: Sentinel backoff counter for stations that are padded or inactive; large
#: enough that decrements over any realistic run leave it unreachable.
_INACTIVE = np.int64(2) ** 62


class CellStreams:
    """Block-buffered per-cell uniform random streams.

    Each cell gets its own :class:`numpy.random.Generator`; uniforms are drawn
    a block at a time and handed out through :meth:`claim`, which reserves
    ``counts[c]`` values per cell and returns the start offset of each cell's
    reservation into :attr:`buffer`.  When a cell's reservation would overrun
    its block, the *remainder of the block is discarded* and a fresh block is
    drawn — wasteful but crucial: whether a refill happens depends only on the
    cell's own consumption history, never on its batch neighbours.

    For the same reason ``block`` may be a per-cell sequence but must always
    be derived from each cell's *own* parameters (its station count, its
    scheme), never from a batch-wide quantity such as the padded width —
    otherwise refill points, and therefore results, would depend on batch
    composition.  The backing buffer is rectangular (padded to the largest
    block); only the per-cell logical block length governs refills.
    """

    def __init__(self, seeds: Sequence[int], block=4096) -> None:
        blocks = np.broadcast_to(
            np.asarray(block, dtype=np.int64), (len(seeds),)
        ).copy()
        if np.any(blocks < 1):
            raise ValueError("block must be positive")
        self._rngs = [np.random.default_rng(seed) for seed in seeds]
        self._blocks = blocks
        width = int(blocks.max())
        self.buffer = np.zeros((len(seeds), width))
        for cell, rng in enumerate(self._rngs):
            self.buffer[cell, : blocks[cell]] = rng.random(int(blocks[cell]))
        self._pos = np.zeros(len(self._rngs), dtype=np.int64)

    @property
    def blocks(self) -> np.ndarray:
        """Per-cell logical block lengths."""
        return self._blocks.copy()

    def claim(self, counts: np.ndarray) -> np.ndarray:
        """Reserve ``counts[c]`` uniforms per cell; return per-cell offsets."""
        new_pos = self._pos + counts
        if (new_pos > self._blocks).any():
            for cell in np.flatnonzero(new_pos > self._blocks):
                block = int(self._blocks[cell])
                if counts[cell] > block:
                    raise ValueError("claim exceeds the stream block size")
                self.buffer[cell, :block] = self._rngs[int(cell)].random(block)
                self._pos[cell] = 0
            new_pos = self._pos + counts
        base = self._pos
        self._pos = new_pos
        return base

    def gather(self, cells: np.ndarray, offsets: np.ndarray,
               width: int) -> np.ndarray:
        """Gather ``width`` consecutive uniforms per (cell, offset) pair."""
        if width == 1:
            return self.buffer[cells, offsets][:, None]
        return self.buffer[
            cells[:, None], offsets[:, None] + np.arange(width)
        ]


class BatchedSlottedSimulator:
    """Vectorized virtual-slot simulator over a batch of connected cells.

    All cells share the scheme (policy/controller banks), PHY, durations,
    frame error rate, reporting options and activity schedule; they differ in
    station count and random seed.  That is exactly the shape of one column
    of a campaign grid, which is how the campaign planner forms batches.

    Parameters
    ----------
    policy_bank / controller_bank:
        Vectorized station policies (:mod:`repro.mac.batched`) and AP
        controller (:mod:`repro.core.batched`) sized for this batch.
    num_stations:
        Per-cell station counts (the batch is padded to the maximum).
    seeds:
        Per-cell RNG seeds.
    duration / warmup / phy / frame_error_rate / report_interval / activity:
        As in :class:`~repro.sim.slotted.SlottedSimulator`, shared by every
        cell in the batch.
    traffic:
        Optional :class:`~repro.traffic.ArrivalProcess` shared by every
        cell.  ``None`` (or saturated) keeps the classic always-backlogged
        behaviour bit-identically; otherwise per-(cell, station) bounded
        FIFO queues gate contention (empty-queue stations freeze their
        counters and rejoin on arrival).  Arrival draws come from separate
        per-cell salted streams (:class:`~repro.traffic.BatchedArrivals`),
        so the contention streams — and therefore composition independence
        — are untouched.
    """

    def __init__(
        self,
        policy_bank: BatchedPolicyBank,
        controller_bank: BatchedControllerBank,
        num_stations: Sequence[int],
        seeds: Sequence[int],
        duration: float,
        warmup: float = 0.0,
        phy: Optional[PhyParameters] = None,
        frame_error_rate: float = 0.0,
        report_interval: Optional[float] = None,
        activity: Optional[ActivitySchedule] = None,
        scheme_name: Optional[str] = None,
        traffic: Optional[ArrivalProcess] = None,
    ) -> None:
        if len(num_stations) != len(seeds):
            raise ValueError("num_stations and seeds must have equal length")
        if not num_stations:
            raise ValueError("a batch needs at least one cell")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        if report_interval is not None and report_interval <= 0:
            raise ValueError("report_interval must be positive")
        if not 0.0 <= frame_error_rate < 1.0:
            raise ValueError("frame_error_rate must lie in [0, 1)")
        self._n = np.asarray(num_stations, dtype=np.int64)
        if np.any(self._n < 1):
            raise ValueError("every cell needs at least one station")
        if activity is not None and np.any(self._n < activity.max_active):
            raise ValueError(
                "num_stations is smaller than the activity schedule's maximum"
            )
        self._bank = policy_bank
        self._controller = controller_bank
        self._seeds = list(seeds)
        self._duration = float(duration)
        self._warmup = float(warmup)
        self._phy = phy or PhyParameters()
        self._fer = float(frame_error_rate)
        self._interval = report_interval
        self._activity = activity
        self._scheme_name = scheme_name
        # The retry limit applies to the MAC regardless of workload, so it
        # is lifted off the spec before the saturated process canonicalises
        # to None (the bit-identical classic path).
        self._retry_limit = (traffic.retry_limit if traffic is not None
                             else None)
        if traffic is not None and traffic.is_saturated:
            traffic = None
        self._traffic = traffic

    # ------------------------------------------------------------------
    def run(self) -> List[SimulationResult]:
        """Simulate every cell for ``warmup + duration`` seconds."""
        bank = self._bank
        controller = self._controller
        phy = self._phy
        sigma = phy.slot_time
        ts = phy.ts
        tc = phy.tc
        payload = phy.payload_bits
        warmup = self._warmup
        duration = self._duration
        end_time = warmup + duration
        interval = self._interval
        fer = self._fer

        n = self._n
        num_cells = n.size
        max_n = int(n.max())
        st_range = np.arange(max_n)
        # Block sizes must depend on each cell's own station count only (not
        # the batch-wide maximum): refill points are part of the cell's
        # random-stream trajectory, and composition independence requires
        # that trajectory to be a function of the cell alone.
        draws = max(bank.draws_initial, bank.draws_success, bank.draws_failure)
        blocks = np.maximum(4096, 8 * n * draws)
        streams = CellStreams(self._seeds, block=blocks)
        # Traffic state lives in its own per-cell salted streams, so the
        # contention stream consumption below is identical whether or not
        # the workload is saturated.
        traffic = self._traffic
        arrivals = (None if traffic is None
                    else BatchedArrivals(traffic, self._seeds, n, max_n))
        # MAC retry state: attempt counters per (cell, station) plus the
        # per-cell discard tally.  None under the default infinite-retry
        # policy, whose stream consumption must stay bit-identical.
        retry_limit = self._retry_limit
        if retry_limit is not None:
            retry_cnt = np.zeros((num_cells, max_n), dtype=np.int64)
            retry_disc = np.zeros(num_cells, dtype=np.int64)
        else:
            retry_cnt = retry_disc = None

        # Station state: counters start at the policy's initial draw for every
        # existing station (the scalar simulator draws for all N policies up
        # front too); stations beyond the initial active count are parked at
        # the sentinel and redraw when an activity change activates them.
        counters = np.full((num_cells, max_n), _INACTIVE, dtype=np.int64)
        exists = st_range[None, :] < n[:, None]
        init_cells, init_stations = np.nonzero(exists)
        k_init = bank.draws_initial
        base = streams.claim(n * k_init)
        offsets = base[init_cells] + init_stations * k_init
        counters[init_cells, init_stations] = bank.initial_draw(
            init_cells, init_stations, streams.gather(init_cells, offsets, k_init)
        )
        if self._activity is not None:
            active = np.full(num_cells, self._activity.active_count(0.0),
                             dtype=np.int64)
        else:
            active = n.copy()
        counters[st_range[None, :] >= active[:, None]] = _INACTIVE

        # Per-cell clocks, measurement state and metrics.
        now = np.zeros(num_cells)
        measuring = np.full(num_cells, warmup == 0.0)
        all_measuring = bool(measuring.all())
        idle_run = np.zeros(num_cells, dtype=np.int64)
        successes = np.zeros((num_cells, max_n), dtype=np.int64)
        failures = np.zeros((num_cells, max_n), dtype=np.int64)
        idle_slots = np.zeros(num_cells, dtype=np.int64)
        busy_periods = np.zeros(num_cells, dtype=np.int64)
        cum_bits = np.zeros(num_cells, dtype=np.int64)
        bits_last = np.zeros(num_cells, dtype=np.int64)
        report_at = np.full(num_cells, interval if interval else np.inf)
        throughput_tl: List[List[Tuple[float, float]]] = [[] for _ in range(num_cells)]
        control_tl: List[List[Tuple[float, float]]] = [[] for _ in range(num_cells)]

        tick = controller.tick_interval
        next_tick = np.full(num_cells, tick if tick else np.inf)

        schedule = self._activity
        if schedule is not None and schedule.change_times():
            change_times = np.asarray(schedule.change_times())
            change_counts = np.asarray(
                [schedule.active_count(t) for t in change_times], dtype=np.int64
            )
            change_index = np.zeros(num_cells, dtype=np.int64)
            pending_change = np.full(num_cells, change_times[0])
        else:
            change_times = np.empty(0)
            change_counts = np.empty(0, dtype=np.int64)
            change_index = np.zeros(num_cells, dtype=np.int64)
            pending_change = np.full(num_cells, np.inf)

        observes = bank.observes_channel
        k_succ = bank.draws_success
        k_fail = bank.draws_failure
        # Every event of a uniform-draw-count scheme consumes exactly one
        # uniform per transmitter, so the per-cell claim is simply ``num_tx``.
        uniform_draws = k_succ == 1 and k_fail == 1
        adaptive = not isinstance(controller, BatchedStaticBank)
        has_schedule = change_times.size > 0
        fer_on = fer > 0.0
        # Phase flags let the hot loop skip measurement bookkeeping before the
        # warm-up boundary and per-cell masking after every cell crossed it.
        none_measuring = not measuring.any()

        def sample_reports(fire: np.ndarray) -> None:
            """Record timeline samples; refresh countdowns (deficit-credited)."""
            cells = np.flatnonzero(fire)
            primary = controller.primary_control()
            for cell in cells:
                delta = int(cum_bits[cell] - bits_last[cell])
                throughput_tl[cell].append((float(now[cell]), delta / interval))
                if primary is not None:
                    control_tl[cell].append((float(now[cell]), float(primary[cell])))
                bits_last[cell] = cum_bits[cell]
            report_at[cells] += interval

        # Loop-level telemetry: counters are plain ints accumulated behind a
        # hoisted enabled flag (one branch per iteration when disabled) and
        # never touch the random streams, so results are bit-identical with
        # telemetry on or off.
        tel = _telemetry()
        tel_on = tel.enabled
        t_iterations = t_idle_ffwd = t_slots = t_busy = t_discards = 0

        # Simulator probes: per-cell boundary grids sampled retroactively
        # after each time advance.  The snapshot reads bank/controller state
        # only (never a random stream) and the probe boundaries never enter
        # the fast-forward bound, so the trajectory is unchanged.
        probe = _probes.current()
        probe_bufs: Optional[List[_probes.ProbeBuffer]] = None
        if probe is not None:
            probe_interval = probe.interval
            probe_bufs = [_probes.ProbeBuffer(probe.capacity)
                          for _ in range(num_cells)]
            probe_next = np.full(num_cells, probe_interval)
            probe_t0 = time.time()
            probe_bits = np.zeros((num_cells, max_n), dtype=np.int64)
            probe_bits_prev = np.zeros((num_cells, max_n), dtype=np.int64)
            probe_busy = np.zeros(num_cells)
            probe_countdown = 0

            def probe_drain(force: bool = False) -> None:
                # Boundaries are half a second apart while the loop iterates
                # every few microseconds of virtual time, so the vector due
                # check runs on a small stride; a boundary is sampled at most
                # a few slots late, far inside one probe window.  The forced
                # post-loop call catches boundaries the stride would strand.
                nonlocal probe_countdown
                probe_countdown -= 1
                if probe_countdown > 0 and not force:
                    return
                probe_countdown = 4
                due_mask = now >= probe_next
                if not due_mask.any():
                    return
                due = np.flatnonzero(due_mask)
                bank_state = bank.probe_state()
                ctrl_state = controller.probe_state()
                queues = (arrivals.queue_lengths
                          if arrivals is not None else None)
                for cell in due:
                    cell = int(cell)
                    stations = int(n[cell])
                    while now[cell] >= probe_next[cell]:
                        values = _probes.flatten_bank_state(
                            bank_state, cell, stations)
                        values.update(_probes.flatten_bank_state(
                            ctrl_state, cell, stations))
                        delta = probe_bits[cell] - probe_bits_prev[cell]
                        for i in range(stations):
                            values[f"tput_mbps[{i}]"] = (
                                delta[i] / probe_interval / 1e6
                            )
                        values["throughput_mbps"] = (
                            int(delta[:stations].sum()) / probe_interval / 1e6
                        )
                        values["busy_frac"] = (
                            probe_busy[cell] / probe_interval
                        )
                        if queues is not None:
                            for i in range(stations):
                                values[f"queue[{i}]"] = float(queues[cell, i])
                        probe_bufs[cell].sample(float(probe_next[cell]),
                                                values)
                        probe_bits_prev[cell] = probe_bits[cell]
                        probe_busy[cell] = 0.0
                        probe_next[cell] += probe_interval

        while True:
            alive = now < end_time
            if not alive.any():
                break
            if tel_on:
                t_iterations += 1

            # Activity changes take effect at their breakpoint times; joining
            # stations redraw a backoff under the current control values
            # (success-draw semantics), leaving stations stop contending.
            while has_schedule:
                due = np.flatnonzero(alive & (now >= pending_change))
                if due.size == 0:
                    break
                new_active = change_counts[change_index[due]]
                old_active = active[due]
                shrink = np.flatnonzero(new_active < old_active)
                for i in shrink:
                    cell = due[i]
                    counters[cell, new_active[i]:old_active[i]] = _INACTIVE
                    if traffic is not None:
                        # Leaving mid-burst must not leak queued frames into
                        # the next join: flush them as drops.
                        leave = np.arange(new_active[i], old_active[i])
                        arrivals.flush(np.full(leave.size, cell), leave)
                grow = np.flatnonzero(new_active > old_active)
                if grow.size:
                    grow_cells = due[grow]
                    reps = new_active[grow] - old_active[grow]
                    cells_flat = np.repeat(grow_cells, reps)
                    st_flat = np.concatenate([
                        np.arange(a, b)
                        for a, b in zip(old_active[grow], new_active[grow])
                    ])
                    counts = np.zeros(num_cells, dtype=np.int64)
                    counts[grow_cells] = reps * k_succ
                    base = streams.claim(counts)
                    rank = st_flat - np.repeat(old_active[grow], reps)
                    offsets = base[cells_flat] + rank * k_succ
                    counters[cells_flat, st_flat] = bank.success_draw(
                        cells_flat, st_flat,
                        streams.gather(cells_flat, offsets, k_succ),
                    )
                active[due] = new_active
                change_index[due] += 1
                has_more = change_index[due] < change_times.size
                pending_change[due] = np.where(
                    has_more,
                    change_times[np.minimum(change_index[due],
                                            change_times.size - 1)],
                    np.inf,
                )

            # Start measuring at the warmup boundary: reset metrics and anchor
            # the reporting grid at the boundary itself (any overshoot counts
            # against the first interval, as in the scalar simulator).
            if not all_measuring:
                cross = alive & ~measuring & (now >= warmup)
                if cross.any():
                    measuring |= cross
                    none_measuring = False
                    successes[cross] = 0
                    failures[cross] = 0
                    idle_slots[cross] = 0
                    busy_periods[cross] = 0
                    cum_bits[cross] = 0
                    bits_last[cross] = 0
                    if traffic is not None:
                        arrivals.reset_measurement(cross)
                    if retry_disc is not None:
                        retry_disc[cross] = 0
                    if interval:
                        report_at[cross] = interval - (now[cross] - warmup)
                    all_measuring = bool(measuring.all())

            # Frame arrivals rejoin parked stations and refill queues; the
            # contention mask below is recomputed from the queue state.
            # Clamping at end_time makes the processed set exactly "every
            # arrival inside the run" for each cell, independent of how far
            # the cell's last slot overshot the horizon and of how long its
            # batch neighbours keep the loop alive (composition contract).
            if traffic is not None:
                arrivals.advance(np.minimum(now, end_time),
                                 st_range[None, :] < active[:, None])
                contend = ((st_range[None, :] < active[:, None])
                           & arrivals.has_frame())

            # Idle fast-forward: advance by whole idle runs, but never past
            # the next tick, activity change, arrival, report boundary,
            # warmup boundary or end of run.
            if traffic is None:
                min_counter = counters.min(axis=1)
            else:
                min_counter = np.where(contend, counters, _INACTIVE).min(axis=1)
            idle = alive & (min_counter > 0)
            if idle.any():
                bound = np.minimum(end_time, next_tick)
                if traffic is not None:
                    np.minimum(bound, arrivals.next_min(), out=bound)
                if has_schedule:
                    np.minimum(bound, pending_change, out=bound)
                if none_measuring:
                    np.minimum(bound, warmup, out=bound)
                elif not all_measuring:
                    np.minimum(bound, np.where(measuring, now + report_at,
                                               warmup), out=bound)
                elif interval:
                    np.minimum(bound, now + report_at, out=bound)
                slots = np.ceil((bound - now) / sigma)
                np.maximum(slots, 1.0, out=slots)
                advance = np.where(
                    idle, np.minimum(min_counter, slots.astype(np.int64)), 0
                )
                if traffic is None:
                    counters -= advance[:, None]
                else:
                    counters -= np.where(contend, advance[:, None], 0)
                now += advance * sigma
                if tel_on:
                    t_idle_ffwd += 1
                    t_slots += int(advance.sum())
                if probe_bufs is not None:
                    probe_drain()
                if observes:
                    idle_run += advance
                if not none_measuring:
                    measured = advance if all_measuring else advance * measuring
                    idle_slots += measured
                    if interval:
                        report_at -= measured * sigma
                        fire = measuring & idle & (report_at <= 0.0)
                        if fire.any():
                            sample_reports(fire)

            # Controller ticks close starved measurement segments; stations
            # pick the refreshed control values up automatically because the
            # banks read them live at draw time.
            if tick:
                due_tick = alive & (now >= next_tick)
                if due_tick.any():
                    controller.on_tick(due_tick, now)
                    next_tick[due_tick] += tick

            # Transmissions: every cell whose minimum counter reached zero
            # resolves one busy virtual slot (success, collision or frame
            # error) this iteration.
            if traffic is None:
                min_counter = counters.min(axis=1)
            else:
                min_counter = np.where(contend, counters, _INACTIVE).min(axis=1)
            tx = (min_counter == 0) & (now < end_time)
            if not tx.any():
                continue
            tx_col = tx[:, None]
            if traffic is None:
                transmitters = tx_col & (counters == 0)
            else:
                # A parked station may hold a counter of zero; only stations
                # with a queued frame transmit.
                transmitters = tx_col & (counters == 0) & contend
            num_tx = transmitters.sum(axis=1)
            single = num_tx == 1
            if tel_on:
                t_busy += int(np.count_nonzero(tx))
            if fer_on and single.any():
                cells = np.flatnonzero(single)
                counts = np.zeros(num_cells, dtype=np.int64)
                counts[cells] = 1
                base = streams.claim(counts)
                draw = streams.buffer[cells, base[cells]]
                success = np.zeros(num_cells, dtype=bool)
                success[cells[draw >= fer]] = True
            else:
                success = single

            if observes:
                bank.observe_transmission(tx, idle_run)
                idle_run[tx] = 0
            slot_duration = np.where(success, ts, tc)
            busy_advance = slot_duration * tx
            now += busy_advance
            if probe_bufs is not None:
                probe_busy += busy_advance
            if not none_measuring:
                tx_measured = tx if all_measuring else tx & measuring
                busy_periods += tx_measured
                if interval:
                    report_at -= slot_duration * tx_measured

            # Waiting stations count down once per virtual slot, busy or idle
            # (Bianchi's renewal model); every station at zero in a
            # transmitting cell is a transmitter and is redrawn below, so the
            # blanket decrement never leaves a stale negative counter behind.
            # Parked (empty-queue) stations freeze instead.
            if traffic is None:
                counters -= tx_col
            else:
                counters -= tx_col & contend

            lose = tx & ~success
            if uniform_draws:
                counts = num_tx
            else:
                counts = success * k_succ + lose * num_tx * k_fail
            base = streams.claim(counts)
            winners = np.flatnonzero(success)
            if winners.size:
                winner_station = transmitters[winners].argmax(axis=1)
                if traffic is not None:
                    # The delivered frame leaves the winner's FIFO (exact
                    # per-frame delay); an emptied winner parks via the
                    # contention mask on the next iteration.
                    arrivals.pop_success(winners, winner_station, now)
                if all_measuring:
                    successes[winners, winner_station] += 1
                elif not none_measuring:
                    successes[winners, winner_station] += measuring[winners]
                if interval and not none_measuring:
                    cum_bits[winners] += payload * measuring[winners]
                if probe_bufs is not None:
                    probe_bits[winners, winner_station] += payload
                if adaptive:
                    controller.on_packet_received(success, now)
                if retry_cnt is not None:
                    retry_cnt[winners, winner_station] = 0
                counters[winners, winner_station] = bank.success_draw(
                    winners, winner_station,
                    streams.gather(winners, base[winners], k_succ),
                )
            if lose.any():
                lose_rows = np.flatnonzero(lose)
                colliding = transmitters[lose_rows]
                row, station = np.nonzero(colliding)
                cells = lose_rows[row]
                if not none_measuring:
                    failures[cells, station] += measuring[cells]
                rank = (np.cumsum(colliding, axis=1) - 1)[row, station]
                offsets = base[cells] + rank * k_fail
                if retry_cnt is None:
                    counters[cells, station] = bank.failure_draw(
                        cells, station, streams.gather(cells, offsets, k_fail)
                    )
                else:
                    # 802.11 retry limit: stations at the limit discard the
                    # frame and reset their contention window (a success
                    # draw); the rest take the normal failure draw at their
                    # already-claimed offsets.  The extra success claim is a
                    # deterministic function of each cell's own trajectory,
                    # so composition independence is preserved (and the
                    # claimed-but-unused failure uniforms of discarding
                    # stations are simply dropped, which never moves another
                    # cell's stream position).
                    retry_cnt[cells, station] += 1
                    disc = retry_cnt[cells, station] >= retry_limit
                    keep = ~disc
                    kc, ks = cells[keep], station[keep]
                    counters[kc, ks] = bank.failure_draw(
                        kc, ks, streams.gather(kc, offsets[keep], k_fail)
                    )
                    if disc.any():
                        dc, ds = cells[disc], station[disc]
                        retry_cnt[dc, ds] = 0
                        if tel_on:
                            t_discards += int(np.count_nonzero(disc))
                        if all_measuring:
                            np.add.at(retry_disc, dc, 1)
                        elif not none_measuring:
                            np.add.at(retry_disc, dc,
                                      measuring[dc].astype(np.int64))
                        if traffic is not None:
                            arrivals.pop_discard(dc, ds, now)
                        counts2 = np.bincount(dc, minlength=num_cells) * k_succ
                        base2 = streams.claim(counts2)
                        drank = np.arange(dc.size) - np.searchsorted(dc, dc)
                        counters[dc, ds] = bank.success_draw(
                            dc, ds,
                            streams.gather(dc, base2[dc] + drank * k_succ,
                                           k_succ),
                        )

            if interval and not none_measuring:
                fire = tx_measured & (report_at <= 0.0)
                if fire.any():
                    sample_reports(fire)
            if probe_bufs is not None:
                probe_drain()

        if traffic is not None:
            # Drain arrivals up to the horizon one last time: a solo cell's
            # loop exits the instant it finishes, while a batched cell keeps
            # being offered its tail arrivals as neighbours run on — this
            # final pass makes both count identically.
            arrivals.advance(np.minimum(now, end_time),
                             st_range[None, :] < active[:, None])
        if tel_on:
            tel.counters("batched", {
                "loop_iterations": t_iterations,
                "idle_fast_forwards": t_idle_ffwd,
                "idle_slots_advanced": t_slots,
                "busy_slots": t_busy,
                "retry_discards": t_discards,
                "cells": num_cells,
                "max_stations": max_n,
            })
        if probe_bufs is not None:
            probe_drain(force=True)
            for cell in range(num_cells):
                record = _probes.probe_record(
                    "batched", probe_bufs[cell], probe, probe_t0,
                    seed=self._seeds[cell], cell=cell,
                )
                if record is not None:
                    tel.emit(record)
        return self._build_results(successes, failures, idle_slots, busy_periods,
                                   throughput_tl, control_tl, arrivals,
                                   retry_disc)

    # ------------------------------------------------------------------
    def _build_results(self, successes, failures, idle_slots, busy_periods,
                       throughput_tl, control_tl,
                       arrivals: Optional[BatchedArrivals] = None,
                       retry_disc: Optional[np.ndarray] = None,
                       ) -> List[SimulationResult]:
        payload = self._phy.payload_bits
        duration = self._duration
        results = []
        for cell in range(self._n.size):
            stations = int(self._n[cell])
            stats = tuple(
                StationStats(
                    station=i,
                    successes=int(successes[cell, i]),
                    failures=int(failures[cell, i]),
                    payload_bits=int(successes[cell, i]) * payload,
                    throughput_bps=int(successes[cell, i]) * payload / duration,
                )
                for i in range(stations)
            )
            extra: Dict[str, object] = {
                "simulator": "batched",
                "num_stations": stations,
                "warmup": self._warmup,
            }
            if self._scheme_name is not None:
                extra["scheme"] = self._scheme_name
            station_idle = self._bank.station_observed_idle()
            if station_idle is not None and not math.isnan(station_idle[cell]):
                extra["station_observed_idle"] = float(station_idle[cell])
            traffic_fields: Dict[str, object] = {}
            if arrivals is not None:
                traffic_fields = arrivals.annotate_result(cell, stations, extra)
            if retry_disc is not None:
                traffic_fields["retry_discards"] = int(retry_disc[cell])
            results.append(SimulationResult(
                duration=duration,
                station_stats=stats,
                total_throughput_bps=int(successes[cell, :stations].sum())
                * payload / duration,
                idle_slots=int(idle_slots[cell]),
                busy_periods=int(busy_periods[cell]),
                throughput_timeline=tuple(throughput_tl[cell]),
                control_timeline=tuple(control_tl[cell]),
                extra=extra,
                **traffic_fields,
            ))
        return results


# ----------------------------------------------------------------------
# Scheme registry: which campaign scheme kinds have a batched kernel
# ----------------------------------------------------------------------
#: Supported scheme kinds mapped to the spec parameters the batched kernels
#: honour; tasks using other kinds or parameters fall back to the scalar
#: simulators.
_BATCHABLE_PARAMS = {
    "standard-802.11": frozenset(),
    "idlesense": frozenset({"target_idle_slots"}),
    "wtop-csma": frozenset({
        "update_period", "initial_control", "initial_p", "initial_station_p",
        "weights",
    }),
    "tora-csma": frozenset({
        "update_period", "initial_p0", "initial_stage",
        "low_threshold", "high_threshold",
    }),
    "fixed-p": frozenset({"p", "weights"}),
    "fixed-randomreset": frozenset({"stage", "p0"}),
}

#: Scheme kinds with a batched kernel.
BATCHABLE_SCHEME_KINDS = tuple(sorted(_BATCHABLE_PARAMS))


def batchable_scheme(kind: str, params: Dict[str, object]) -> bool:
    """Whether ``kind`` with these spec parameters has a batched kernel."""
    supported = _BATCHABLE_PARAMS.get(kind)
    if supported is None:
        return False
    return set(params) <= set(supported)


def make_batched_system(
    kind: str,
    params: Dict[str, object],
    num_cells: int,
    max_stations: int,
    phy: PhyParameters,
    station_observations: bool = False,
) -> Tuple[BatchedPolicyBank, BatchedControllerBank, str]:
    """Build (policy bank, controller bank, display name) for a scheme kind.

    ``kind`` and ``params`` use the same vocabulary as
    :class:`repro.experiments.campaign.SchemeSpec`; the display names match
    the scalar factories in :mod:`repro.mac.schemes` so batched results carry
    identical metadata.  ``station_observations`` selects per-station channel
    observation state for observing schemes (required by the conflict-graph
    simulator, where stations of one cell see different channels); the
    per-cell variant is only valid for fully connected cells.
    """
    if not batchable_scheme(kind, params):
        raise ValueError(
            f"scheme kind '{kind}' with params {sorted(params)} has no "
            f"batched kernel (supported kinds: {BATCHABLE_SCHEME_KINDS})"
        )
    if kind == "standard-802.11":
        return (BatchedDcfBank(phy, num_cells, max_stations),
                BatchedStaticBank(), "Standard 802.11")
    if kind == "idlesense":
        target = float(params.get("target_idle_slots", 3.1))
        if station_observations:
            bank: BatchedPolicyBank = BatchedStationIdleSenseBank(
                phy, num_cells, max_stations, target_idle_slots=target,
            )
        else:
            bank = BatchedIdleSenseBank(phy, num_cells,
                                        target_idle_slots=target)
        return bank, BatchedStaticBank(), "IdleSense"
    if kind == "wtop-csma":
        controller = BatchedWTopBank(
            num_cells, phy,
            update_period=float(params.get("update_period", 0.25)),
            initial_control=float(params.get("initial_control", 0.5)),
            initial_p=params.get("initial_p"),
        )
        bank = BatchedPPersistentBank(
            num_cells, max_stations,
            initial_p=float(params.get("initial_station_p", 0.1)),
            weights=params.get("weights"),
            control=controller,
        )
        return bank, controller, "wTOP-CSMA"
    if kind == "tora-csma":
        initial_stage = int(params.get("initial_stage", 0))
        controller = BatchedToraBank(
            num_cells, phy,
            update_period=float(params.get("update_period", 0.25)),
            initial_p0=float(params.get("initial_p0", 0.5)),
            initial_stage=initial_stage,
            low_threshold=float(params.get("low_threshold", 0.05)),
            high_threshold=float(params.get("high_threshold", 0.95)),
        )
        # Stations start with reset probability 1 at the initial stage and
        # adopt the advertised (p0, j) afterwards, as in tora_csma_scheme.
        bank = BatchedRandomResetBank(
            phy, num_cells, max_stations,
            initial_stage=initial_stage, initial_p0=1.0, control=controller,
        )
        return bank, controller, "TORA-CSMA"
    if kind == "fixed-p":
        p = float(params["p"])
        bank = BatchedPPersistentBank(
            num_cells, max_stations, initial_p=p, weights=params.get("weights"),
        )
        return bank, BatchedStaticBank(), f"p-persistent(p={p:g})"
    # fixed-randomreset
    stage = int(params["stage"])
    p0 = float(params["p0"])
    bank = BatchedRandomResetBank(
        phy, num_cells, max_stations, initial_stage=stage, initial_p0=p0,
    )
    return bank, BatchedStaticBank(), f"RandomReset(j={stage}, p0={p0:g})"


def run_batched(
    kind: str,
    params: Dict[str, object],
    num_stations: Sequence[int],
    seeds: Sequence[int],
    duration: float,
    warmup: float = 0.0,
    phy: Optional[PhyParameters] = None,
    **kwargs,
) -> List[SimulationResult]:
    """One-call convenience wrapper: build the banks and run the batch."""
    phy = phy or PhyParameters()
    policy_bank, controller_bank, name = make_batched_system(
        kind, dict(params), len(num_stations), int(max(num_stations)), phy
    )
    simulator = BatchedSlottedSimulator(
        policy_bank, controller_bank, num_stations, seeds,
        duration=duration, warmup=warmup, phy=phy, scheme_name=name, **kwargs,
    )
    return simulator.run()
