"""Event-driven WLAN simulation (the ns-3 substitute).

:class:`WlanSimulation` wires together the event scheduler, the shared
medium, one :class:`~repro.sim.node.StationProcess` per station, and an
:class:`AccessPointProcess` that hosts the AP-side controller (wTOP-CSMA,
TORA-CSMA or a static/no-op controller) and generates ACK frames.

Unlike the slotted simulator, stations here freeze and resume their backoff
based on their *own* sensing sets, so hidden-node topologies are modelled
faithfully: stations that cannot hear each other count down concurrently and
their frames collide at the AP when they overlap in time.

Typical use::

    graph = hidden_node_scenario(num_stations=20, rng=np.random.default_rng(1))
    sim = WlanSimulation(scheme=tora_csma_scheme(), connectivity=graph, seed=1)
    result = sim.run(duration=5.0, warmup=2.0)
    print(result.total_throughput_mbps)
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.controller import AccessPointController
from ..mac.backoff import BackoffPolicy
from ..mac.schemes import Scheme
from ..phy.constants import NS_PER_SECOND, PhyParameters, seconds_to_ns
from ..phy.frame import FrameFactory
from ..telemetry import current as _telemetry
from ..telemetry import probes as _probes
from ..topology.graph import ConnectivityGraph
from ..traffic import ArrivalProcess, ArrivalStream, FrameQueue, station_arrival_rng
from .dynamics import ActivitySchedule, constant_activity
from .engine import EventScheduler
from .medium import AP_NODE_ID, ActiveTransmission, Medium
from .metrics import MetricsCollector, SimulationResult
from .node import StationProcess

__all__ = ["AccessPointProcess", "WlanSimulation", "run_event_driven"]


@dataclass
class _PendingAck:
    """Book-keeping for an ACK frame queued or in flight."""

    destination: int
    control: Dict[str, float]
    transmission: Optional[ActiveTransmission] = None


class AccessPointProcess:
    """The access point: receives data frames, runs the controller, sends ACKs.

    Success/failure is decided by the medium's overlap rule: a data frame that
    was not corrupted is acknowledged after SIFS; a corrupted frame receives
    no ACK and the transmitter declares a failure immediately (its own
    subsequent DIFS deferral accounts for the remainder of ``Tc``).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        medium: Medium,
        frame_factory: FrameFactory,
        phy: PhyParameters,
        controller: AccessPointController,
        metrics: MetricsCollector,
        broadcast_control: bool = True,
        frame_error_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= frame_error_rate < 1.0:
            raise ValueError("frame_error_rate must lie in [0, 1)")
        self._scheduler = scheduler
        self._medium = medium
        self._frames = frame_factory
        self._phy = phy
        self._controller = controller
        self._metrics = metrics
        self._broadcast_control = broadcast_control
        self._frame_error_rate = float(frame_error_rate)
        self._rng = rng or np.random.default_rng(0)
        self._stations: Dict[int, StationProcess] = {}
        self._ap_free_at_ns = 0
        # Frames already counted delivered (the AP decides the outcome when
        # the data frame ends) whose ACK has not yet reached the sender, so
        # they still sit at the head of the sender's queue.  Needed to keep
        # the end-of-run frame inventory exact: offered == delivered +
        # dropped + retry-discarded + awaiting-service.
        self._acked_in_flight = 0

    # ------------------------------------------------------------------
    def attach_stations(self, stations: Sequence[StationProcess]) -> None:
        self._stations = {station.station_id: station for station in stations}

    @property
    def controller(self) -> AccessPointController:
        return self._controller

    @property
    def acked_in_flight(self) -> int:
        """Frames counted delivered whose ACK is still in flight."""
        return self._acked_in_flight

    # ------------------------------------------------------------------
    def on_data_transmission_end(self, station_id: int,
                                 transmission: ActiveTransmission,
                                 now_ns: int) -> None:
        """Decide the outcome of a finished data frame."""
        station = self._stations[station_id]
        channel_error = (
            self._frame_error_rate > 0.0
            and self._rng.random() < self._frame_error_rate
        )
        if transmission.corrupted or channel_error:
            self._metrics.record_failure(station_id)
            station.deliver_failure()
            return

        payload_bits = getattr(transmission.frame, "payload_bits", 0)
        self._metrics.record_success(station_id, payload_bits)
        if station.queue_length > 0:
            self._acked_in_flight += 1
        self._controller.on_packet_received(
            station_id, payload_bits, now_ns / NS_PER_SECOND
        )
        control = self._controller.control()
        ack = _PendingAck(destination=station_id, control=dict(control))
        # The ACK starts after SIFS, or once the AP radio is free if a
        # previous ACK is still being transmitted (rare, hidden-node case).
        start_ns = max(now_ns + self._phy.sifs_ns, self._ap_free_at_ns)
        end_ns = start_ns + self._phy.ack_tx_time_ns
        self._ap_free_at_ns = end_ns
        self._scheduler.schedule_at(start_ns, self._start_ack, ack)

    # ------------------------------------------------------------------
    def _start_ack(self, ack: _PendingAck) -> None:
        frame = self._frames.ack(
            source=AP_NODE_ID,
            destination=ack.destination,
            acked_frame_id=0,
            control=ack.control,
        )
        ack.transmission = self._medium.start_transmission(
            AP_NODE_ID, frame, self._phy.ack_tx_time_ns
        )
        self._scheduler.schedule_in(self._phy.ack_tx_time_ns, self._end_ack, ack)

    def _end_ack(self, ack: _PendingAck) -> None:
        assert ack.transmission is not None
        self._medium.end_transmission(ack.transmission)
        destination = self._stations.get(ack.destination)
        if destination is not None:
            if destination.deliver_success(ack.control):
                self._acked_in_flight -= 1
        if self._broadcast_control and ack.control:
            for station_id, station in self._stations.items():
                if station_id != ack.destination:
                    station.overhear_ack(ack.control)


class WlanSimulation:
    """End-to-end event-driven simulation of one WLAN scenario.

    Parameters
    ----------
    scheme:
        MAC scheme (station policies + AP controller).
    connectivity:
        Topology-derived sensing sets (decides who is hidden from whom).
    phy:
        PHY timing parameters (defaults to the paper's Table I).
    seed:
        Master seed; every station receives an independent child stream.
    activity:
        Optional dynamic-activity schedule (Figures 8-11).
    broadcast_control:
        Whether stations apply control values from ACKs addressed to others
        (wTOP-CSMA requires this; TORA-CSMA only needs its own ACKs).
    report_interval:
        Sampling period (seconds) for the throughput / control time lines.
    frame_error_rate:
        Probability that a collision-free frame is lost to an i.i.d. channel
        error (paper, footnote 1); lost frames receive no ACK.
    traffic:
        Optional :class:`~repro.traffic.ArrivalProcess` describing each
        station's frame arrivals.  ``None`` (or the saturated process)
        keeps the classic always-backlogged behaviour bit-identically;
        otherwise each station owns a bounded FIFO queue, parks while the
        queue is empty and rejoins contention on arrival.  Arrival
        generators derive from ``(seed, TRAFFIC_STREAM_SALT, station)`` —
        the same derivation the slotted simulator uses, so both scalar
        backends see bit-identical per-station arrival sequences.
    """

    def __init__(
        self,
        scheme: Scheme,
        connectivity: ConnectivityGraph,
        phy: Optional[PhyParameters] = None,
        seed: int = 0,
        activity: Optional[ActivitySchedule] = None,
        broadcast_control: bool = True,
        report_interval: Optional[float] = None,
        frame_error_rate: float = 0.0,
        traffic: Optional[ArrivalProcess] = None,
    ) -> None:
        self._scheme = scheme
        self._connectivity = connectivity
        self._phy = phy or PhyParameters()
        self._seed = int(seed)
        self._num_stations = connectivity.num_stations
        self._activity = activity or constant_activity(self._num_stations)
        if self._activity.max_active > self._num_stations:
            raise ValueError(
                "activity schedule requires more stations than the topology has"
            )
        if report_interval is not None and report_interval <= 0:
            raise ValueError("report_interval must be positive")
        self._report_interval = report_interval

        self._scheduler = EventScheduler()
        self._frame_factory = FrameFactory(self._phy)
        sensing_sets = [set(s) for s in connectivity.sensing_sets()]
        self._medium = Medium(self._scheduler, sensing_sets)
        self._metrics = MetricsCollector(self._num_stations)
        self._controller = scheme.make_controller()
        master = np.random.default_rng(seed)
        self._access_point = AccessPointProcess(
            scheduler=self._scheduler,
            medium=self._medium,
            frame_factory=self._frame_factory,
            phy=self._phy,
            controller=self._controller,
            metrics=self._metrics,
            broadcast_control=broadcast_control,
            frame_error_rate=frame_error_rate,
            rng=np.random.default_rng(master.integers(0, 2 ** 63 - 1)),
        )

        # The retry limit applies to the MAC regardless of workload, so it
        # is lifted off the spec before the saturated process canonicalises
        # to None (the bit-identical classic path).
        retry_limit = traffic.retry_limit if traffic is not None else None
        if traffic is not None and traffic.is_saturated:
            traffic = None
        self._traffic = traffic
        self._arrival_streams: List[ArrivalStream] = []
        if traffic is not None and not traffic.is_closed_loop:
            # Arrival generators are salted separately from the contention
            # streams (and drawn outside the master-seed sequence), so
            # enabling traffic never perturbs the stations' backoff draws.
            self._arrival_streams = [
                ArrivalStream(
                    traffic, station_arrival_rng(seed, station_id),
                    rate_fps=traffic.rate_for(station_id, self._num_stations),
                )
                for station_id in range(self._num_stations)
            ]
        # Closed-loop flow state (window kind): releases are clocked by
        # frames leaving the MAC via _on_frame_departed.
        self._flow_left = np.zeros(self._num_stations, dtype=np.int64)
        self._flow_done = np.zeros(self._num_stations, dtype=np.int64)
        self._flow_total = 0

        self._policies: List[BackoffPolicy] = scheme.make_policies(self._num_stations)
        self._stations: List[StationProcess] = []
        for station_id, policy in enumerate(self._policies):
            station_rng = np.random.default_rng(master.integers(0, 2 ** 63 - 1))
            station = StationProcess(
                station_id=station_id,
                policy=policy,
                scheduler=self._scheduler,
                medium=self._medium,
                frame_factory=self._frame_factory,
                phy=self._phy,
                rng=station_rng,
                on_transmission_end=self._access_point.on_data_transmission_end,
                queue=(None if traffic is None
                       else FrameQueue(traffic.queue_limit)),
                on_queue_delay=self._metrics.record_queue_delay,
                retry_limit=retry_limit,
                on_retry_discard=self._metrics.record_retry_discard,
                on_frame_departed=(self._on_frame_departed
                                   if traffic is not None
                                   and traffic.is_closed_loop else None),
            )
            self._stations.append(station)
        self._access_point.attach_stations(self._stations)

        # Time-line bookkeeping filled in during run().
        self._bits_at_last_report = 0
        self._measure_start_s = 0.0

        # Probe state (installed per-run when a ProbeConfig is ambient).
        self._probe_config: Optional[_probes.ProbeConfig] = None
        self._probe_buffer: Optional[_probes.ProbeBuffer] = None
        self._probe_bits_prev: List[int] = []
        self._probe_busy_prev_ns = 0
        self._probe_t0 = 0.0

    # ------------------------------------------------------------------
    @property
    def controller(self) -> AccessPointController:
        return self._controller

    @property
    def stations(self) -> Sequence[StationProcess]:
        return tuple(self._stations)

    @property
    def policies(self) -> Sequence[BackoffPolicy]:
        return tuple(self._policies)

    @property
    def phy(self) -> PhyParameters:
        return self._phy

    @property
    def scheduler(self) -> EventScheduler:
        return self._scheduler

    # ------------------------------------------------------------------
    def run(self, duration: float, warmup: float = 0.0) -> SimulationResult:
        """Simulate ``warmup + duration`` seconds and return measured metrics."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")

        # Closed-loop pre-fill happens before activation so that every
        # station starts contending with its window already queued.
        traffic = self._traffic
        if traffic is not None and traffic.is_closed_loop:
            flow = traffic.flow_frames
            prefill = (traffic.window if flow is None
                       else min(traffic.window, flow))
            remaining = 2 ** 62 if flow is None else flow - prefill
            self._flow_left[:] = remaining
            self._flow_total = 0 if flow is None else int(flow)
            for station in self._stations:
                for _ in range(prefill):
                    station.enqueue(0.0)
            self._metrics.record_arrival(prefill * self._num_stations)

        # Activate the initially-active stations and schedule later changes.
        initial_active = self._activity.active_count(0.0)
        initial_control = self._controller.control()
        for station_id in range(initial_active):
            self._stations[station_id].activate(initial_control)
        for change_time in self._activity.change_times():
            self._scheduler.schedule_at(
                seconds_to_ns(change_time), self._apply_activity_change, change_time
            )
        for station_id, stream in enumerate(self._arrival_streams):
            self._scheduler.schedule_at(
                seconds_to_ns(stream.next_time), self._on_arrival, station_id
            )

        # Periodic controller ticks (the paper's beacon-carried variant):
        # a starving probe value must not stall adaptation forever.
        tick = self._controller.tick_interval
        if tick is not None and tick > 0:
            self._scheduler.schedule_at(
                seconds_to_ns(tick), self._controller_tick, tick
            )

        # Simulator probes ride the event scheduler: a self-rescheduling
        # read-only callback samples controller/queue/throughput state on the
        # probe grid (from t = 0, so the warm-up transient is observed).  The
        # callback never touches a random stream or simulation state, so the
        # SimulationResult is bit-identical with probes on or off (the extra
        # scheduler events only shift event sequence numbers).
        probe = _probes.current()
        self._probe_config = probe
        if probe is not None:
            self._probe_buffer = _probes.ProbeBuffer(probe.capacity)
            self._probe_t0 = time.time()
            self._probe_bits_prev = [0] * self._num_stations
            self._probe_busy_prev_ns = 0
            self._scheduler.schedule_at(
                seconds_to_ns(probe.interval), self._sample_probe,
                probe.interval,
            )

        end_ns = seconds_to_ns(warmup + duration)
        if warmup > 0:
            self._scheduler.run_until(seconds_to_ns(warmup))
            self._metrics.reset()
            self._medium.reset_occupancy_statistics()
        self._measure_start_s = warmup
        self._bits_at_last_report = 0
        if self._report_interval is not None:
            first_report = warmup + self._report_interval
            if first_report <= warmup + duration:
                self._scheduler.schedule_at(
                    seconds_to_ns(first_report), self._sample_report, first_report
                )
        self._scheduler.run_until(end_ns)

        self._finalise_idle_statistics(duration)
        tel = _telemetry()
        if tel.enabled:
            # The scheduler maintains these counters anyway, so the event
            # backend's telemetry is free: one record per run, no loop cost.
            tel.counters("event", {
                "events_processed": self._scheduler.processed_events,
                "events_cancelled": self._scheduler.cancelled_events,
                "heap_compactions": self._scheduler.heap_compactions,
                "events_pending_at_end": self._scheduler.pending_events,
                "num_stations": self._num_stations,
            })
        if self._probe_buffer is not None:
            record = _probes.probe_record(
                "event", self._probe_buffer, self._probe_config,
                self._probe_t0, seed=self._seed,
            )
            if record is not None:
                tel.emit(record)
        extra: Dict[str, object] = {
            "scheme": self._scheme.name,
            "simulator": "event-driven",
            "num_stations": self._num_stations,
            "warmup": warmup,
            "topology": self._connectivity.placement.description,
            "hidden_pairs": len(self._connectivity.hidden_pairs()),
        }
        if self._traffic is not None:
            extra["traffic"] = self._traffic.kind
            extra["offered_rate_fps"] = self._traffic.mean_rate_fps
            # Frames awaiting service: a frame whose ACK is still in flight
            # at the horizon has already been counted delivered, so it must
            # not be double-counted as queued.
            extra["queued_frames"] = (
                sum(station.queue_length for station in self._stations)
                - self._access_point.acked_in_flight
            )
        return self._metrics.result(duration=duration, extra=extra)

    # ------------------------------------------------------------------
    def _controller_tick(self, tick_time: float) -> None:
        updated = self._controller.on_tick(tick_time)
        if updated:
            control = self._controller.control()
            for station in self._stations:
                if station.is_active:
                    station.overhear_ack(control)
        interval = self._controller.tick_interval or 0.0
        if interval > 0:
            next_time = tick_time + interval
            self._scheduler.schedule_at(
                seconds_to_ns(next_time), self._controller_tick, next_time
            )

    def _apply_activity_change(self, change_time: float) -> None:
        target = self._activity.active_count(change_time)
        control = self._controller.control()
        for station_id, station in enumerate(self._stations):
            if station_id < target and not station.is_active:
                station.activate(control)
            elif station_id >= target and station.is_active:
                station.deactivate()
                # A station leaving mid-burst must not leak its queued
                # frames into the next join: flush them as drops.
                flushed = station.flush_queue()
                if flushed:
                    self._metrics.record_drop(flushed)

    def _on_frame_departed(self, station_id: int) -> None:
        """Closed-loop clocking: a frame left ``station_id``'s MAC
        (delivered or retry-discarded), so release the next window frame
        and record the flow completion when the budget is spent."""
        now_s = self._scheduler.now_ns / NS_PER_SECOND
        self._flow_done[station_id] += 1
        if self._flow_left[station_id] > 0:
            self._flow_left[station_id] -= 1
            self._metrics.record_arrival()
            station = self._stations[station_id]
            if not station.is_active or not station.enqueue(now_s):
                self._metrics.record_drop()
        if self._flow_total and self._flow_done[station_id] == self._flow_total:
            self._metrics.record_flow_completion(station_id, now_s)

    def _on_arrival(self, station_id: int) -> None:
        """One frame arrived at ``station_id``; schedule the next arrival.

        Arrivals to schedule-inactive stations and to full queues count as
        drops.  Counters recorded before the warm-up boundary are wiped by
        the metrics reset at the boundary, so no gating is needed here.
        """
        stream = self._arrival_streams[station_id]
        arrival = stream.advance()
        self._metrics.record_arrival()
        station = self._stations[station_id]
        if not station.is_active or not station.enqueue(arrival):
            self._metrics.record_drop()
        self._scheduler.schedule_at(
            seconds_to_ns(stream.next_time), self._on_arrival, station_id
        )

    def _sample_probe(self, probe_time: float) -> None:
        """Read-only probe sample; self-reschedules on the probe grid.

        Cumulative metrics (per-station bits, channel busy time) are turned
        into windowed deltas against the previous boundary's snapshot; the
        warm-up metric reset makes a cumulative value fall below its
        snapshot, in which case the snapshot rebases to zero (the reset
        instant starts a fresh accumulation epoch).
        """
        probe = self._probe_config
        interval = probe.interval
        payload = self._phy.payload_bits
        values = _probes.controller_series(self._controller)
        for i, policy in enumerate(self._policies):
            values.update(_probes.station_series(i, policy))
        total_delta = 0
        for i in range(self._num_stations):
            bits = self._metrics.successes(i) * payload
            prev = self._probe_bits_prev[i]
            if bits < prev:
                prev = 0
            delta = bits - prev
            total_delta += delta
            values[f"tput_mbps[{i}]"] = delta / interval / 1e6
            self._probe_bits_prev[i] = bits
        values["throughput_mbps"] = total_delta / interval / 1e6
        busy_ns = self._medium.data_busy_total_ns
        prev_busy = self._probe_busy_prev_ns
        if busy_ns < prev_busy:
            prev_busy = 0
        values["busy_frac"] = (busy_ns - prev_busy) / seconds_to_ns(interval)
        self._probe_busy_prev_ns = busy_ns
        if self._traffic is not None:
            for i, station in enumerate(self._stations):
                values[f"queue[{i}]"] = float(station.queue_length)
        self._probe_buffer.sample(probe_time, values)
        next_time = probe_time + interval
        self._scheduler.schedule_at(
            seconds_to_ns(next_time), self._sample_probe, next_time
        )

    def _sample_report(self, report_time: float) -> None:
        interval = self._report_interval or 0.0
        cumulative_bits = self._metrics.total_payload_bits
        delta = cumulative_bits - self._bits_at_last_report
        self._bits_at_last_report = cumulative_bits
        self._metrics.record_throughput_sample(report_time, delta / interval)
        control = self._controller.control()
        if "p" in control:
            self._metrics.record_control_sample(report_time, control["p"])
        elif "p0" in control:
            self._metrics.record_control_sample(report_time, control["p0"])
        next_time = report_time + interval
        self._scheduler.schedule_at(
            seconds_to_ns(next_time), self._sample_report, next_time
        )

    def _finalise_idle_statistics(self, duration: float) -> None:
        """Convert channel-occupancy statistics to backoff-slot counts.

        The Table III metric is "idle (backoff) slots per transmission".  The
        medium reports the union of data-frame airtime and the number of
        maximal busy periods; subtracting the per-period framing overheads
        (DIFS always, SIFS + ACK for successes) leaves the contention idle
        time, which is divided by the slot duration.
        """
        busy_periods = self._medium.data_busy_periods
        busy_time_s = self._medium.data_busy_total_ns / NS_PER_SECOND
        successes = sum(self._metrics.successes(i) for i in range(self._num_stations))
        overhead_s = (
            busy_periods * self._phy.difs
            + successes * (self._phy.sifs + self._phy.ack_tx_time)
        )
        idle_time_s = max(duration - busy_time_s - overhead_s, 0.0)
        self._metrics.record_idle_slots(int(idle_time_s / self._phy.slot_time))
        self._metrics.record_busy_period(busy_periods)


def run_event_driven(
    scheme: Scheme,
    connectivity: ConnectivityGraph,
    duration: float,
    warmup: float = 0.0,
    phy: Optional[PhyParameters] = None,
    seed: int = 0,
    **kwargs,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`WlanSimulation`."""
    simulation = WlanSimulation(
        scheme=scheme, connectivity=connectivity, phy=phy, seed=seed, **kwargs
    )
    return simulation.run(duration=duration, warmup=warmup)
