"""Shared wireless medium with per-station carrier sensing.

The medium tracks which transmissions are currently in the air and tells each
station when *its own view* of the channel changes between idle and busy.
Station ``i`` senses a transmission from station ``j`` only if ``j`` is in
``i``'s sensing set (``T_j`` membership in the paper's notation) — this is
what creates hidden nodes.  Transmissions from the access point (ACKs) are
sensed by everyone.

Collision semantics follow the paper's Section II exactly: a data frame is
received successfully iff **no other data transmission overlaps it in time**,
regardless of where the other transmitter is.  The medium therefore marks any
pair of temporally overlapping data transmissions as corrupted; ACKs never
corrupt anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Set

from ..phy.frame import Frame, FrameType
from .engine import EventScheduler

__all__ = ["AP_NODE_ID", "ActiveTransmission", "MediumListener", "Medium"]

#: Reserved node id of the access point.
AP_NODE_ID = -1


@dataclass
class ActiveTransmission:
    """A transmission currently (or previously) in the air."""

    source: int
    frame: Frame
    start_ns: int
    end_ns: int
    corrupted: bool = False

    @property
    def is_data(self) -> bool:
        return self.frame.frame_type is FrameType.DATA

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class MediumListener(Protocol):
    """Interface stations implement to hear about their channel state."""

    def on_medium_busy(self, now_ns: int,
                       transmission: "ActiveTransmission") -> None:
        """The station's sensed channel transitioned idle -> busy.

        ``transmission`` is the frame whose start caused the transition
        (stations use its type to distinguish data from ACK activity when
        collecting IdleSense-style observations).
        """

    def on_medium_idle(self, now_ns: int) -> None:
        """The station's sensed channel transitioned busy -> idle."""


class Medium:
    """Tracks in-flight transmissions and dispatches carrier-sense events.

    Parameters
    ----------
    scheduler:
        The event scheduler (used only for the current time).
    sensing_sets:
        ``sensing_sets[i]`` is the set of stations whose transmissions
        station ``i`` can sense (station ``i`` itself may or may not be in
        the set; it is ignored because a station never carrier-senses its own
        transmission).
    """

    def __init__(self, scheduler: EventScheduler,
                 sensing_sets: Sequence[Set[int]]) -> None:
        self._scheduler = scheduler
        self._num_stations = len(sensing_sets)
        # Pre-compute, for each transmitter, which stations will sense it.
        self._sensed_by: List[List[int]] = [[] for _ in range(self._num_stations)]
        for listener_id, sensed in enumerate(sensing_sets):
            for source in sensed:
                if source == listener_id:
                    continue
                if not 0 <= source < self._num_stations:
                    raise ValueError(f"sensing set refers to unknown station {source}")
                self._sensed_by[source].append(listener_id)
        self._listeners: Dict[int, MediumListener] = {}
        self._busy_counts = [0] * self._num_stations
        self._active: List[ActiveTransmission] = []
        self._active_data_count = 0
        # Channel-occupancy accounting (for the Table III idle-slot metric).
        self._data_busy_since_ns: Optional[int] = None
        self._data_busy_total_ns = 0
        self._data_busy_periods = 0
        # Observers notified of every transmission start (AP-side statistics).
        self._start_observers: List[Callable[[ActiveTransmission], None]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @property
    def num_stations(self) -> int:
        return self._num_stations

    def register_listener(self, station: int, listener: MediumListener) -> None:
        """Attach the station process that wants carrier-sense callbacks."""
        if not 0 <= station < self._num_stations:
            raise ValueError(f"unknown station {station}")
        self._listeners[station] = listener

    def add_start_observer(self, observer: Callable[[ActiveTransmission], None]) -> None:
        """Register a callback invoked at the start of every transmission."""
        self._start_observers.append(observer)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_busy_for(self, station: int) -> bool:
        """Whether station ``station`` currently senses the channel busy."""
        return self._busy_counts[station] > 0

    def active_transmissions(self) -> Sequence[ActiveTransmission]:
        return tuple(self._active)

    @property
    def active_data_count(self) -> int:
        """Number of data transmissions currently in the air (any location)."""
        return self._active_data_count

    # ------------------------------------------------------------------
    # Channel occupancy statistics (system level, used by Table III)
    # ------------------------------------------------------------------
    @property
    def data_busy_total_ns(self) -> int:
        """Total time at least one data transmission was in the air."""
        total = self._data_busy_total_ns
        if self._data_busy_since_ns is not None:
            total += self._scheduler.now_ns - self._data_busy_since_ns
        return total

    @property
    def data_busy_periods(self) -> int:
        """Number of maximal intervals with >= 1 data transmission in the air."""
        return self._data_busy_periods

    def reset_occupancy_statistics(self) -> None:
        """Restart the occupancy counters (used at the end of a warm-up)."""
        self._data_busy_total_ns = 0
        self._data_busy_periods = 1 if self._data_busy_since_ns is not None else 0
        if self._data_busy_since_ns is not None:
            self._data_busy_since_ns = self._scheduler.now_ns

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------
    def start_transmission(self, source: int, frame: Frame,
                           duration_ns: int) -> ActiveTransmission:
        """Put a frame on the air for ``duration_ns`` starting now.

        The caller is responsible for scheduling :meth:`end_transmission`
        at the returned transmission's ``end_ns``.
        """
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        now = self._scheduler.now_ns
        transmission = ActiveTransmission(
            source=source, frame=frame, start_ns=now, end_ns=now + duration_ns
        )
        if transmission.is_data:
            # Any temporal overlap between two data frames destroys both.
            for other in self._active:
                if other.is_data:
                    other.corrupted = True
                    transmission.corrupted = True
            if self._active_data_count == 0:
                self._data_busy_since_ns = now
                self._data_busy_periods += 1
            self._active_data_count += 1
        self._active.append(transmission)
        for observer in self._start_observers:
            observer(transmission)
        self._notify_start(source, now, transmission)
        return transmission

    def end_transmission(self, transmission: ActiveTransmission) -> None:
        """Remove a frame from the air (call exactly at its end time)."""
        now = self._scheduler.now_ns
        try:
            self._active.remove(transmission)
        except ValueError:
            raise ValueError("transmission is not active") from None
        if transmission.is_data:
            self._active_data_count -= 1
            if self._active_data_count == 0 and self._data_busy_since_ns is not None:
                self._data_busy_total_ns += now - self._data_busy_since_ns
                self._data_busy_since_ns = None
        self._notify_end(transmission.source, now)

    # ------------------------------------------------------------------
    # Carrier-sense notifications
    # ------------------------------------------------------------------
    def _audience(self, source: int) -> Sequence[int]:
        if source == AP_NODE_ID:
            return range(self._num_stations)
        return self._sensed_by[source]

    def _notify_start(self, source: int, now_ns: int,
                      transmission: ActiveTransmission) -> None:
        for station in self._audience(source):
            self._busy_counts[station] += 1
            if self._busy_counts[station] == 1:
                listener = self._listeners.get(station)
                if listener is not None:
                    listener.on_medium_busy(now_ns, transmission)

    def _notify_end(self, source: int, now_ns: int) -> None:
        for station in self._audience(source):
            self._busy_counts[station] -= 1
            if self._busy_counts[station] < 0:  # pragma: no cover - defensive
                raise RuntimeError("busy count underflow; unbalanced start/end")
            if self._busy_counts[station] == 0:
                listener = self._listeners.get(station)
                if listener is not None:
                    listener.on_medium_idle(now_ns)
