"""Measurement collection shared by both simulators.

:class:`MetricsCollector` accumulates per-station and system-wide counters
(successes, collisions, payload bits, idle slots) plus optional time series
(throughput per reporting interval) and renders them into a
:class:`SimulationResult`, the object every experiment runner consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["StationStats", "SimulationResult", "MetricsCollector"]


@dataclass(frozen=True)
class StationStats:
    """Per-station counters over a simulation run."""

    station: int
    successes: int
    failures: int
    payload_bits: int
    throughput_bps: float

    @property
    def attempts(self) -> int:
        return self.successes + self.failures

    @property
    def collision_fraction(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.failures / self.attempts


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    duration:
        Simulated time in seconds over which the metrics were collected
        (excluding any warm-up the caller discarded).
    station_stats:
        Per-station counters.
    total_throughput_bps:
        System throughput in bits/s.
    idle_slots / busy_periods:
        System-level counts used for the "average idle slots per
        transmission" column of Table III.
    throughput_timeline:
        Optional ``(time_s, throughput_bps)`` series sampled every reporting
        interval (Figures 8 and 10).
    control_timeline:
        Optional ``(time_s, value)`` series of the AP's control variable
        (Figures 9 and 11).
    offered_frames / dropped_frames / queue_delay_sum_s:
        Traffic-workload counters (zero for saturated runs): frames offered
        by the arrival processes during the measurement window, frames
        dropped (full queue, or flushed when a station left the network),
        and the summed FIFO queueing delay of every delivered frame.
    retry_discards:
        Frames the MAC discarded after exhausting the configured retry
        limit (zero under the default infinite-retry policy).
    queue_delay_p50_s / queue_delay_p99_s:
        Median and 99th-percentile FIFO queueing delay over the delivered
        frames of the measurement window (zero when nothing queued).
    flow_completions:
        ``(station, completion_time_s)`` pairs for every bounded
        closed-loop flow that finished (empty for open-loop workloads).
    extra:
        Free-form metadata (scheme name, topology description, seeds...).
    """

    duration: float
    station_stats: Tuple[StationStats, ...]
    total_throughput_bps: float
    idle_slots: int = 0
    busy_periods: int = 0
    throughput_timeline: Tuple[Tuple[float, float], ...] = ()
    control_timeline: Tuple[Tuple[float, float], ...] = ()
    offered_frames: int = 0
    dropped_frames: int = 0
    queue_delay_sum_s: float = 0.0
    retry_discards: int = 0
    queue_delay_p50_s: float = 0.0
    queue_delay_p99_s: float = 0.0
    flow_completions: Tuple[Tuple[int, float], ...] = ()
    extra: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_stations(self) -> int:
        return len(self.station_stats)

    @property
    def total_throughput_mbps(self) -> float:
        return self.total_throughput_bps / 1e6

    @property
    def per_station_throughput_bps(self) -> Tuple[float, ...]:
        return tuple(s.throughput_bps for s in self.station_stats)

    @property
    def total_successes(self) -> int:
        return sum(s.successes for s in self.station_stats)

    @property
    def total_failures(self) -> int:
        return sum(s.failures for s in self.station_stats)

    @property
    def collision_fraction(self) -> float:
        attempts = self.total_successes + self.total_failures
        if attempts == 0:
            return 0.0
        return self.total_failures / attempts

    @property
    def average_idle_slots_per_transmission(self) -> float:
        """System-level idle slots per busy period (Table III metric)."""
        if self.busy_periods == 0:
            return 0.0
        return self.idle_slots / self.busy_periods

    @property
    def drop_rate(self) -> float:
        """Fraction of offered frames dropped (0 when nothing was offered)."""
        if self.offered_frames == 0:
            return 0.0
        return self.dropped_frames / self.offered_frames

    @property
    def mean_queue_delay_s(self) -> float:
        """Mean FIFO queueing delay per delivered frame (seconds)."""
        delivered = self.total_successes
        if delivered == 0:
            return 0.0
        return self.queue_delay_sum_s / delivered

    @property
    def mean_flow_completion_s(self) -> float:
        """Mean flow-completion time over the finished closed-loop flows
        (0 when no bounded flow completed)."""
        if not self.flow_completions:
            return 0.0
        return sum(t for _, t in self.flow_completions) / len(
            self.flow_completions
        )


class MetricsCollector:
    """Mutable accumulator that both simulators write into."""

    def __init__(self, num_stations: int) -> None:
        if num_stations < 1:
            raise ValueError("num_stations must be at least 1")
        self._num_stations = num_stations
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        n = self._num_stations
        self._successes = np.zeros(n, dtype=np.int64)
        self._failures = np.zeros(n, dtype=np.int64)
        self._payload_bits = np.zeros(n, dtype=np.int64)
        self._idle_slots = 0
        self._busy_periods = 0
        self._offered_frames = 0
        self._dropped_frames = 0
        self._queue_delay_sum_s = 0.0
        self._retry_discards = 0
        self._queue_delays: List[float] = []
        self._flow_completions: List[Tuple[int, float]] = []
        self._throughput_timeline: List[Tuple[float, float]] = []
        self._control_timeline: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------
    @property
    def num_stations(self) -> int:
        return self._num_stations

    def record_success(self, station: int, payload_bits: int) -> None:
        self._successes[station] += 1
        self._payload_bits[station] += payload_bits

    def record_failure(self, station: int) -> None:
        self._failures[station] += 1

    def record_idle_slots(self, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self._idle_slots += count

    def record_busy_period(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self._busy_periods += count

    def record_arrival(self, count: int = 1) -> None:
        """Count frames offered by the arrival processes."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._offered_frames += count

    def record_drop(self, count: int = 1) -> None:
        """Count frames dropped (full queue, inactive station, or flush)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._dropped_frames += count

    def record_queue_delay(self, delay_s: float) -> None:
        """Accumulate one delivered frame's FIFO queueing delay."""
        self._queue_delay_sum_s += delay_s
        self._queue_delays.append(delay_s)

    def record_retry_discard(self, count: int = 1) -> None:
        """Count frames discarded at the MAC retry limit."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._retry_discards += count

    def record_flow_completion(self, station: int, time_s: float) -> None:
        """Record a bounded closed-loop flow finishing at ``time_s``."""
        self._flow_completions.append((int(station), float(time_s)))

    def record_throughput_sample(self, time_s: float, throughput_bps: float) -> None:
        self._throughput_timeline.append((time_s, throughput_bps))

    def record_control_sample(self, time_s: float, value: float) -> None:
        self._control_timeline.append((time_s, value))

    # ------------------------------------------------------------------
    @property
    def total_payload_bits(self) -> int:
        return int(self._payload_bits.sum())

    def successes(self, station: int) -> int:
        return int(self._successes[station])

    def failures(self, station: int) -> int:
        return int(self._failures[station])

    # ------------------------------------------------------------------
    def result(self, duration: float,
               extra: Optional[Mapping[str, object]] = None) -> SimulationResult:
        """Render the counters into an immutable :class:`SimulationResult`."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        stats = tuple(
            StationStats(
                station=i,
                successes=int(self._successes[i]),
                failures=int(self._failures[i]),
                payload_bits=int(self._payload_bits[i]),
                throughput_bps=float(self._payload_bits[i]) / duration,
            )
            for i in range(self._num_stations)
        )
        if self._queue_delays:
            p50, p99 = np.quantile(np.asarray(self._queue_delays),
                                   (0.5, 0.99))
        else:
            p50 = p99 = 0.0
        return SimulationResult(
            duration=duration,
            station_stats=stats,
            total_throughput_bps=self.total_payload_bits / duration,
            idle_slots=self._idle_slots,
            busy_periods=self._busy_periods,
            throughput_timeline=tuple(self._throughput_timeline),
            control_timeline=tuple(self._control_timeline),
            offered_frames=self._offered_frames,
            dropped_frames=self._dropped_frames,
            queue_delay_sum_s=self._queue_delay_sum_s,
            retry_discards=self._retry_discards,
            queue_delay_p50_s=float(p50),
            queue_delay_p99_s=float(p99),
            flow_completions=tuple(sorted(self._flow_completions)),
            extra=dict(extra or {}),
        )
