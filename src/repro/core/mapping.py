"""Control-variable mappings between the optimiser domain and MAC parameters.

The Kiefer-Wolfowitz tracker works on a normalised variable ``x`` in
``[0, 1]``.  How ``x`` translates into the MAC parameter matters in practice:

* For TORA-CSMA's reset probability ``p0`` the identity (linear) map is fine —
  the throughput is flat near the optimum (Figure 13) and ``p0`` natively
  lives in ``[0, 1]``.
* For wTOP-CSMA's attempt probability ``p`` the optimum is ``p* ~ 1/N``
  (Eq. 8), i.e. orders of magnitude smaller than 1 for realistic ``N``.
  An additive perturbation ``b_k`` on ``p`` itself would dwarf ``p*`` for a
  very long time (``b_k = k^{-1/3}`` decays slowly), so the reproduction
  optimises ``x = log(p)`` rescaled to ``[0, 1]`` instead.  The paper's own
  evaluation plots throughput against ``log(p)`` (Figures 2 and 4), and a
  strictly monotone reparameterisation preserves quasi-concavity, so the
  Kiefer-Wolfowitz convergence argument is unchanged.  DESIGN.md records this
  as an implementation calibration.

Both maps are strictly increasing bijections of ``[0, 1]`` onto
``[low, high]``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

__all__ = ["ControlMapping", "LinearMapping", "LogMapping"]


class ControlMapping(ABC):
    """Bijection between the optimiser variable ``x`` and a MAC parameter."""

    @abstractmethod
    def to_parameter(self, x: float) -> float:
        """Map ``x`` in [0, 1] to the MAC parameter value."""

    @abstractmethod
    def to_control(self, parameter: float) -> float:
        """Inverse map from a MAC parameter value back to ``x``."""

    @property
    @abstractmethod
    def low(self) -> float:
        """Parameter value at ``x = 0``."""

    @property
    @abstractmethod
    def high(self) -> float:
        """Parameter value at ``x = 1``."""

    def _check_x(self, x: float) -> float:
        if not 0.0 <= x <= 1.0:
            raise ValueError("x must lie in [0, 1]")
        return float(x)


class LinearMapping(ControlMapping):
    """Affine map ``x -> low + x (high - low)``."""

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if not low < high:
            raise ValueError("require low < high")
        self._low = float(low)
        self._high = float(high)

    @property
    def low(self) -> float:
        return self._low

    @property
    def high(self) -> float:
        return self._high

    def to_parameter(self, x: float) -> float:
        x = self._check_x(x)
        return self._low + x * (self._high - self._low)

    def to_control(self, parameter: float) -> float:
        if not self._low <= parameter <= self._high:
            raise ValueError("parameter outside the mapping range")
        return (parameter - self._low) / (self._high - self._low)


class LogMapping(ControlMapping):
    """Log-uniform map ``x -> low * (high / low)^x`` (requires low > 0)."""

    def __init__(self, low: float = 1e-4, high: float = 0.5) -> None:
        if not 0.0 < low < high:
            raise ValueError("require 0 < low < high")
        self._low = float(low)
        self._high = float(high)
        self._log_ratio = math.log(high / low)

    @property
    def low(self) -> float:
        return self._low

    @property
    def high(self) -> float:
        return self._high

    def to_parameter(self, x: float) -> float:
        x = self._check_x(x)
        value = self._low * math.exp(x * self._log_ratio)
        # Guard against floating-point overshoot at the endpoints.
        return min(max(value, self._low), self._high)

    def to_control(self, parameter: float) -> float:
        if not self._low * (1 - 1e-12) <= parameter <= self._high * (1 + 1e-12):
            raise ValueError("parameter outside the mapping range")
        parameter = min(max(parameter, self._low), self._high)
        return math.log(parameter / self._low) / self._log_ratio
