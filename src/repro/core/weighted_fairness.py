"""Weighted-fairness mapping between the shared control variable and stations.

Lemma 1 / Theorem 1: in p-persistent CSMA, if every station ``t`` maps the
shared control value ``p`` through its weight ``w_t``::

    p_t = w_t * p / (1 + (w_t - 1) * p)

then station throughputs are proportional to weights *regardless of what the
other stations do*, and the N-dimensional weighted-fair optimisation problem
collapses to the scalar problem ``max_p S(p, W)`` that wTOP-CSMA solves.

The functions here implement the forward map, its inverse, and vectorised
helpers used by the station-side MAC and by tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "station_attempt_probability",
    "base_probability_from_station",
    "attempt_probabilities",
    "validate_weights",
]


def validate_weights(weights: Sequence[float]) -> np.ndarray:
    """Check that weights are positive finite numbers; return as an array."""
    arr = np.asarray(weights, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one weight")
    if np.any(~np.isfinite(arr)) or np.any(arr <= 0):
        raise ValueError("weights must be positive and finite")
    return arr


def station_attempt_probability(weight: float, p: float) -> float:
    """Forward map ``p -> p_t`` of Lemma 1.

    Properties (all exercised by tests):

    * ``p_t = p`` when ``weight == 1``;
    * ``p_t`` is increasing in both ``p`` and ``weight``;
    * ``p_t / (1 - p_t) = weight * p / (1 - p)`` — the odds scale linearly
      with the weight, which is what makes throughput proportional to it.
    """
    if weight <= 0:
        raise ValueError("weight must be positive")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    if p == 1.0:
        return 1.0
    return weight * p / (1.0 + (weight - 1.0) * p)


def base_probability_from_station(weight: float, station_probability: float) -> float:
    """Inverse map ``p_t -> p``; useful for diagnostics and tests."""
    if weight <= 0:
        raise ValueError("weight must be positive")
    if not 0.0 <= station_probability <= 1.0:
        raise ValueError("station probability must lie in [0, 1]")
    if station_probability == 1.0:
        return 1.0
    # Solve p_t = w p / (1 + (w-1) p) for p.
    pt = station_probability
    return pt / (weight - (weight - 1.0) * pt)


def attempt_probabilities(weights: Sequence[float], p: float) -> np.ndarray:
    """Vectorised forward map for a whole network."""
    arr = validate_weights(weights)
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    return arr * p / (1.0 + (arr - 1.0) * p)
