"""Core contribution: Kiefer-Wolfowitz optimisation and the wTOP-CSMA /
TORA-CSMA access-point controllers."""

from .batched import (
    BatchedControllerBank,
    BatchedKwTracker,
    BatchedSegmentMeter,
    BatchedStaticBank,
    BatchedToraBank,
    BatchedWTopBank,
)
from .controller import (
    AccessPointController,
    ControlUpdate,
    SegmentThroughputMeter,
    StaticController,
)
from .kiefer_wolfowitz import (
    GainSchedule,
    KieferWolfowitzOptimizer,
    OptimizationTrace,
    PAPER_GAIN_SCHEDULE,
    ProbeSide,
    TwoSidedGradientTracker,
)
from .mapping import ControlMapping, LinearMapping, LogMapping
from .tora import (
    DEFAULT_HIGH_THRESHOLD,
    DEFAULT_LOW_THRESHOLD,
    ToraCsmaController,
)
from .weighted_fairness import (
    attempt_probabilities,
    base_probability_from_station,
    station_attempt_probability,
    validate_weights,
)
from .wtop import (
    CONTROLLER_GAIN_SCHEDULE,
    DEFAULT_P_MAX,
    DEFAULT_UPDATE_PERIOD,
    WTopCsmaController,
)

__all__ = [
    "BatchedControllerBank",
    "BatchedKwTracker",
    "BatchedSegmentMeter",
    "BatchedStaticBank",
    "BatchedToraBank",
    "BatchedWTopBank",
    "ControlMapping",
    "LinearMapping",
    "LogMapping",
    "CONTROLLER_GAIN_SCHEDULE",
    "AccessPointController",
    "ControlUpdate",
    "SegmentThroughputMeter",
    "StaticController",
    "GainSchedule",
    "KieferWolfowitzOptimizer",
    "OptimizationTrace",
    "PAPER_GAIN_SCHEDULE",
    "ProbeSide",
    "TwoSidedGradientTracker",
    "DEFAULT_HIGH_THRESHOLD",
    "DEFAULT_LOW_THRESHOLD",
    "ToraCsmaController",
    "attempt_probabilities",
    "base_probability_from_station",
    "station_attempt_probability",
    "validate_weights",
    "DEFAULT_P_MAX",
    "DEFAULT_UPDATE_PERIOD",
    "WTopCsmaController",
]
