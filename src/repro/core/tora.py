"""TORA-CSMA: Throughput-Optimal RandomReset CSMA (Algorithm 2).

On transmission failures, stations perform standard binary exponential
backoff.  On a success they reset to backoff stage ``j`` with probability
``p0`` and to a uniformly chosen stage in ``{j+1, ..., m}`` otherwise
(Definition 4).  The AP tunes ``p0`` with the same Kiefer-Wolfowitz scheme as
wTOP-CSMA; when the tuned centre saturates near 0 the optimum lies at a lower
attempt probability and ``j`` is incremented, when it saturates near 1 the
optimum lies at a higher attempt probability and ``j`` is decremented.  The
iteration counter is *not* advanced on a stage shift (Algorithm 2, lines
12-18), so the perturbation width stays large enough to keep exploring the
new stage.

The stage/probability pair is broadcast in ACK frames; stations apply it on
their next successful transmission.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..phy.constants import DEFAULT_BIT_RATE, PhyParameters
from .controller import AccessPointController, ControlUpdate, SegmentThroughputMeter
from .kiefer_wolfowitz import GainSchedule, TwoSidedGradientTracker
from .wtop import CONTROLLER_GAIN_SCHEDULE

__all__ = [
    "ToraCsmaController",
    "DEFAULT_LOW_THRESHOLD",
    "DEFAULT_HIGH_THRESHOLD",
]

#: Threshold ``delta_l`` below which the backoff stage is incremented.
DEFAULT_LOW_THRESHOLD = 0.05

#: Threshold ``delta_h`` above which the backoff stage is decremented.
DEFAULT_HIGH_THRESHOLD = 0.95


class ToraCsmaController(AccessPointController):
    """AP-side TORA-CSMA controller (Algorithm 2).

    Parameters
    ----------
    phy:
        PHY parameters; only ``cw_min`` and the number of backoff stages
        ``m`` are used.
    update_period:
        Measurement segment length in seconds (paper: 250 ms).
    initial_p0 / initial_stage:
        Starting reset probability and stage (paper: 0.5 after the first
        update frame, stage 0).
    low_threshold / high_threshold:
        ``delta_l`` (~0) and ``delta_h`` (~1) stage-shift thresholds.
    throughput_scale:
        Divisor applied to measured throughput before the gradient step so
        the Kiefer-Wolfowitz update has O(1) magnitude (default: the channel
        bit rate); the same calibration as in
        :class:`~repro.core.wtop.WTopCsmaController`.
    """

    name = "TORA-CSMA"

    def __init__(
        self,
        phy: Optional[PhyParameters] = None,
        update_period: float = 0.25,
        initial_p0: float = 0.5,
        initial_stage: int = 0,
        low_threshold: float = DEFAULT_LOW_THRESHOLD,
        high_threshold: float = DEFAULT_HIGH_THRESHOLD,
        schedule: GainSchedule = CONTROLLER_GAIN_SCHEDULE,
        throughput_scale: float = DEFAULT_BIT_RATE,
        initial_k: int = 2,
    ) -> None:
        self._phy = phy or PhyParameters()
        self._num_stages = self._phy.num_backoff_stages
        if not 0 <= initial_stage <= max(self._num_stages - 1, 0):
            raise ValueError(
                f"initial_stage must lie in [0, {self._num_stages - 1}]"
            )
        if not 0.0 <= low_threshold < high_threshold <= 1.0:
            raise ValueError("require 0 <= low_threshold < high_threshold <= 1")
        if throughput_scale <= 0:
            raise ValueError("throughput_scale must be positive")
        self._throughput_scale = float(throughput_scale)
        self._update_period = float(update_period)
        self._initial_p0 = float(initial_p0)
        self._initial_stage = int(initial_stage)
        self._low_threshold = float(low_threshold)
        self._high_threshold = float(high_threshold)
        self._schedule = schedule
        self._initial_k = int(initial_k)
        self._meter = SegmentThroughputMeter(update_period)
        self._tracker = TwoSidedGradientTracker(
            initial=initial_p0,
            schedule=schedule,
            bounds=(0.0, 1.0),
            probe_bounds=(0.0, 1.0),
            initial_k=initial_k,
        )
        self._stage = int(initial_stage)
        self._history: List[ControlUpdate] = []
        self._stage_shifts: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    # AccessPointController interface
    # ------------------------------------------------------------------
    def on_packet_received(self, source: int, payload_bits: int, now: float) -> None:
        """Accumulate received bits; close segments, update ``p0`` and ``j``."""
        throughput = self._meter.observe(payload_bits, now)
        if throughput is not None:
            self._apply_measurement(throughput, now)

    def on_tick(self, now: float) -> bool:
        """Close an expired segment even if no packet arrived during it."""
        throughput = self._meter.maybe_close(now)
        if throughput is None:
            return False
        self._apply_measurement(throughput, now)
        return True

    @property
    def tick_interval(self) -> Optional[float]:
        return self._update_period

    def _apply_measurement(self, throughput_bps: float, now: float) -> None:
        pair_completed = self._tracker.observe(throughput_bps / self._throughput_scale)
        if pair_completed:
            self._maybe_shift_stage(now)
        self._history.append(
            ControlUpdate(time=now, control=self.control(), throughput_bps=throughput_bps)
        )

    def control(self) -> Dict[str, float]:
        """Control values advertised in ACKs.

        ``p0`` is the probe reset probability, ``stage`` the reset stage
        ``j`` and ``cw`` the corresponding contention window
        ``2^j * CWmin`` (the paper broadcasts the latter two together).
        """
        return {
            "p0": self._tracker.probe,
            "stage": float(self._stage),
            "cw": float(self._phy.contention_window(self._stage)),
        }

    def history(self) -> Tuple[ControlUpdate, ...]:
        return tuple(self._history)

    def reset(self) -> None:
        self._meter = SegmentThroughputMeter(self._update_period)
        self._tracker = TwoSidedGradientTracker(
            initial=self._initial_p0,
            schedule=self._schedule,
            bounds=(0.0, 1.0),
            probe_bounds=(0.0, 1.0),
            initial_k=self._initial_k,
        )
        self._stage = self._initial_stage
        self._history.clear()
        self._stage_shifts.clear()

    # ------------------------------------------------------------------
    # Stage-shift logic (Algorithm 2, lines 12-18)
    # ------------------------------------------------------------------
    def _maybe_shift_stage(self, now: float) -> None:
        center = self._tracker.center
        max_stage = max(self._num_stages - 1, 0)
        if center <= self._low_threshold and self._stage < max_stage:
            self._stage += 1
            self._restart_tracker_after_shift(now)
        elif center >= self._high_threshold and self._stage > 0:
            self._stage -= 1
            self._restart_tracker_after_shift(now)

    def _restart_tracker_after_shift(self, now: float) -> None:
        """Reset ``pval`` to 0.5 without advancing the iteration counter."""
        # ``observe`` already advanced ``k`` for the pair that triggered the
        # shift; the paper keeps ``k`` unchanged on a shift, so step it back.
        previous_k = max(self._tracker.iteration - 1, 1)
        self._tracker.reset(center=0.5, k=previous_k)
        self._stage_shifts.append((now, self._stage))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def phy(self) -> PhyParameters:
        return self._phy

    @property
    def update_period(self) -> float:
        return self._update_period

    @property
    def stage(self) -> int:
        """Current reset stage ``j``."""
        return self._stage

    @property
    def center(self) -> float:
        """Current centre estimate of the reset probability ``p0``."""
        return self._tracker.center

    @property
    def advertised_p0(self) -> float:
        """Reset probability currently advertised to stations."""
        return self._tracker.probe

    @property
    def iteration(self) -> int:
        return self._tracker.iteration

    @property
    def updates(self) -> int:
        return self._tracker.updates

    def stage_shifts(self) -> Tuple[Tuple[float, int], ...]:
        """``(time, new_stage)`` records of every stage shift."""
        return tuple(self._stage_shifts)

    def segments(self) -> Tuple[Tuple[float, float], ...]:
        return self._meter.segments()

    def convergence_trace(self) -> Tuple[Tuple[float, float, int], ...]:
        """``(time, p0, stage)`` samples for Figure 11 style plots."""
        return tuple(
            (update.time, update.control["p0"], int(update.control["stage"]))
            for update in self._history
        )
