"""Kiefer-Wolfowitz stochastic approximation (paper Section III-B).

The Kiefer-Wolfowitz (KW) scheme maximises a function ``S(x)`` that can only
be observed through noisy measurements ``y`` with ``E[y | x] = S(x)``.  Two
gain sequences ``a_k`` and ``b_k`` drive the recursion::

    x_{k+1} = x_k + a_k * (y(x_k + b_k) - y(x_k - b_k)) / b_k

with the classical conditions ``b_k -> 0``, ``sum a_k = inf``,
``sum a_k b_k < inf`` and ``sum (a_k / b_k)^2 < inf``.  The paper uses
``a_k = 1/k`` and ``b_k = 1/k^(1/3)``, which satisfies all four.

Three layers are provided:

* :class:`GainSchedule` — the ``(a_k, b_k)`` sequences plus a numerical
  validator of the convergence conditions;
* :class:`TwoSidedGradientTracker` — the *incremental* form used by the AP
  controllers: it alternates probes at ``x + b_k`` and ``x - b_k``, accepts
  one noisy measurement per probe and updates ``x`` after each +/- pair.
  This is exactly the state machine inside Algorithm 1 and Algorithm 2;
* :class:`KieferWolfowitzOptimizer` — a batch driver that repeatedly queries
  a noisy objective callable; used in tests, examples and ablation benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = [
    "GainSchedule",
    "PAPER_GAIN_SCHEDULE",
    "ProbeSide",
    "TwoSidedGradientTracker",
    "KieferWolfowitzOptimizer",
    "OptimizationTrace",
]


@dataclass(frozen=True)
class GainSchedule:
    """The gain sequences ``a_k = a0 / k^alpha`` and ``b_k = b0 / k^gamma``.

    The paper's choice is ``a0 = b0 = 1``, ``alpha = 1``, ``gamma = 1/3``.
    The classical sufficient conditions translate to

    * ``gamma > 0``                      (``b_k -> 0``),
    * ``alpha <= 1``                     (``sum a_k`` diverges),
    * ``alpha + gamma > 1``              (``sum a_k b_k`` converges),
    * ``2 * (alpha - gamma) > 1``        (``sum (a_k/b_k)^2`` converges).
    """

    a0: float = 1.0
    b0: float = 1.0
    alpha: float = 1.0
    gamma: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        if self.a0 <= 0 or self.b0 <= 0:
            raise ValueError("gain scales a0 and b0 must be positive")
        if self.alpha <= 0 or self.gamma <= 0:
            raise ValueError("gain exponents must be positive")

    def a(self, k: int) -> float:
        """Step size ``a_k`` (``k`` counts from 1)."""
        if k < 1:
            raise ValueError("k must be at least 1")
        return self.a0 / (k ** self.alpha)

    def b(self, k: int) -> float:
        """Perturbation half-width ``b_k`` (``k`` counts from 1)."""
        if k < 1:
            raise ValueError("k must be at least 1")
        return self.b0 / (k ** self.gamma)

    def satisfies_kw_conditions(self) -> bool:
        """Check the classical sufficient conditions on the exponents."""
        diverges = self.alpha <= 1.0
        ab_summable = self.alpha + self.gamma > 1.0
        ratio_summable = 2.0 * (self.alpha - self.gamma) > 1.0
        return diverges and ab_summable and ratio_summable and self.gamma > 0

    def partial_sums(self, horizon: int) -> Tuple[float, float, float]:
        """Partial sums of ``a_k``, ``a_k b_k`` and ``(a_k/b_k)^2`` up to ``horizon``.

        Useful for demonstrating the divergence/convergence behaviour in tests
        without symbolic analysis.
        """
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        sum_a = 0.0
        sum_ab = 0.0
        sum_ratio_sq = 0.0
        for k in range(1, horizon + 1):
            ak = self.a(k)
            bk = self.b(k)
            sum_a += ak
            sum_ab += ak * bk
            sum_ratio_sq += (ak / bk) ** 2
        return sum_a, sum_ab, sum_ratio_sq


#: The gain schedule used by the paper's Algorithms 1 and 2.
PAPER_GAIN_SCHEDULE = GainSchedule(a0=1.0, b0=1.0, alpha=1.0, gamma=1.0 / 3.0)


class ProbeSide:
    """Enumeration of the two perturbation sides (kept simple on purpose)."""

    PLUS = "+"
    MINUS = "-"


class TwoSidedGradientTracker:
    """Incremental Kiefer-Wolfowitz state machine.

    The tracker maintains the centre point ``x`` (``pval`` in the paper's
    pseudo code) and the iteration counter ``k``.  Client code repeatedly

    1. reads :attr:`probe` — the value to apply to the system during the next
       measurement segment (``x + b_k`` first, then ``x - b_k``);
    2. calls :meth:`observe` with the measured objective for that segment.

    After observing a (+, -) pair the centre moves by
    ``a_k * (y_plus - y_minus) / b_k`` (clipped to ``bounds``), ``k``
    increments and the probe returns to the + side.

    Parameters
    ----------
    initial:
        Starting centre value (the paper uses 0.5).
    schedule:
        Gain sequences; defaults to the paper's.
    bounds:
        Inclusive clipping range for the *centre*; the paper clips the
        transmitted probability to [0, 0.9] for wTOP and [0, 1] for TORA.
    probe_bounds:
        Optional separate clipping range for the probe values (defaults to
        ``bounds``); Algorithm 1 clips ``pval + b_k`` to at most 0.9 and
        ``pval - b_k`` to at least 0.
    initial_k:
        First iteration index; the paper starts at ``k = 2`` so that the
        perturbation ``b_k`` is already below 1.
    """

    def __init__(
        self,
        initial: float = 0.5,
        schedule: GainSchedule = PAPER_GAIN_SCHEDULE,
        bounds: Tuple[float, float] = (0.0, 1.0),
        probe_bounds: Optional[Tuple[float, float]] = None,
        initial_k: int = 2,
    ) -> None:
        low, high = bounds
        if low >= high:
            raise ValueError("bounds must satisfy low < high")
        if not low <= initial <= high:
            raise ValueError("initial value must lie within bounds")
        if initial_k < 1:
            raise ValueError("initial_k must be at least 1")
        self._schedule = schedule
        self._bounds = (float(low), float(high))
        self._probe_bounds = tuple(map(float, probe_bounds or bounds))
        self._initial = float(initial)
        self._initial_k = int(initial_k)
        self.reset()

    # ------------------------------------------------------------------
    def reset(self, center: Optional[float] = None, k: Optional[int] = None) -> None:
        """Reset the tracker (optionally to a new centre / iteration index).

        TORA-CSMA uses this when it shifts the backoff stage: ``pval`` is
        reset to 0.5 but the iteration counter keeps increasing, so the reset
        accepts either value independently.
        """
        self._center = self._initial if center is None else float(center)
        low, high = self._bounds
        self._center = min(max(self._center, low), high)
        if k is not None:
            if k < 1:
                raise ValueError("k must be at least 1")
            self._k = int(k)
        elif not hasattr(self, "_k"):
            self._k = self._initial_k
        self._side = ProbeSide.PLUS
        self._plus_measurement: Optional[float] = None
        self._updates = 0

    # ------------------------------------------------------------------
    @property
    def center(self) -> float:
        """Current centre estimate (``pval``)."""
        return self._center

    @property
    def iteration(self) -> int:
        """Current iteration counter ``k``."""
        return self._k

    @property
    def updates(self) -> int:
        """Number of completed (+, -) update pairs."""
        return self._updates

    @property
    def side(self) -> str:
        """Which perturbation side the next observation belongs to."""
        return self._side

    @property
    def perturbation(self) -> float:
        """Current half-width ``b_k``."""
        return self._schedule.b(self._k)

    @property
    def step_size(self) -> float:
        """Current step size ``a_k``."""
        return self._schedule.a(self._k)

    @property
    def probe(self) -> float:
        """The control value to apply during the next measurement segment."""
        low, high = self._probe_bounds
        if self._side == ProbeSide.PLUS:
            return min(self._center + self.perturbation, high)
        return max(self._center - self.perturbation, low)

    # ------------------------------------------------------------------
    def observe(self, measurement: float) -> bool:
        """Record the measured objective for the current probe.

        Returns True when this observation completed a (+, -) pair and the
        centre was updated.
        """
        if not math.isfinite(measurement):
            raise ValueError("measurement must be finite")
        if self._side == ProbeSide.PLUS:
            self._plus_measurement = float(measurement)
            self._side = ProbeSide.MINUS
            return False

        assert self._plus_measurement is not None
        gradient = (self._plus_measurement - float(measurement)) / self.perturbation
        low, high = self._bounds
        self._center = min(max(self._center + self.step_size * gradient, low), high)
        self._k += 1
        self._side = ProbeSide.PLUS
        self._plus_measurement = None
        self._updates += 1
        return True

    def gradient_estimate(self, plus: float, minus: float) -> float:
        """The stochastic gradient ``(y+ - y-) / b_k`` at the current ``k``."""
        return (plus - minus) / self.perturbation


@dataclass(frozen=True)
class OptimizationTrace:
    """History of a batch Kiefer-Wolfowitz run."""

    centers: Tuple[float, ...]
    probes: Tuple[float, ...]
    measurements: Tuple[float, ...]

    @property
    def final(self) -> float:
        return self.centers[-1]


class KieferWolfowitzOptimizer:
    """Batch driver that optimises a noisy scalar objective.

    Parameters
    ----------
    objective:
        Callable returning a *noisy* observation of the objective at a point.
    initial, schedule, bounds:
        As in :class:`TwoSidedGradientTracker`.
    """

    def __init__(
        self,
        objective: Callable[[float], float],
        initial: float = 0.5,
        schedule: GainSchedule = PAPER_GAIN_SCHEDULE,
        bounds: Tuple[float, float] = (0.0, 1.0),
        probe_bounds: Optional[Tuple[float, float]] = None,
    ) -> None:
        self._objective = objective
        self._tracker = TwoSidedGradientTracker(
            initial=initial, schedule=schedule, bounds=bounds, probe_bounds=probe_bounds
        )

    @property
    def tracker(self) -> TwoSidedGradientTracker:
        return self._tracker

    def run(self, iterations: int) -> OptimizationTrace:
        """Run ``iterations`` complete (+, -) update pairs."""
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        centers: List[float] = [self._tracker.center]
        probes: List[float] = []
        measurements: List[float] = []
        for _ in range(iterations):
            for _ in range(2):
                probe = self._tracker.probe
                value = float(self._objective(probe))
                probes.append(probe)
                measurements.append(value)
                self._tracker.observe(value)
            centers.append(self._tracker.center)
        return OptimizationTrace(
            centers=tuple(centers), probes=tuple(probes), measurements=tuple(measurements)
        )
