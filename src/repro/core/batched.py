"""Vectorized (batched) access-point controllers.

The scalar controllers (:mod:`repro.core.wtop`, :mod:`repro.core.tora`) hold
one Kiefer-Wolfowitz tracker and one segment throughput meter per simulation.
The batched slotted simulator (:mod:`repro.sim.batched`) advances many
independent cells at once, so this module re-expresses the same state
machines as *banks* whose state variables are 1-D arrays over cells:

* :class:`BatchedSegmentMeter` — per-cell ``bytes_recd``/segment bookkeeping
  of :class:`~repro.core.controller.SegmentThroughputMeter`;
* :class:`BatchedKwTracker` — the vectorized Kiefer-Wolfowitz update step of
  :class:`~repro.core.kiefer_wolfowitz.TwoSidedGradientTracker` (probe at
  ``center + b_k`` then ``center - b_k``, move along the stochastic gradient
  after each pair);
* :class:`BatchedWTopBank` / :class:`BatchedToraBank` — Algorithm 1 and 2 on
  top of the two, including wTOP's log-domain control mapping and TORA's
  stage-shift rule (reset ``pval`` to 0.5 without advancing ``k``).

Every update uses the same gain schedule, clipping bounds, normalisation and
thresholds as the scalar controllers, so a batch of one cell follows the
exact same trajectory modulo RNG stream consumption order.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..phy.constants import DEFAULT_BIT_RATE, PhyParameters
from .kiefer_wolfowitz import GainSchedule
from .mapping import LogMapping
from .tora import DEFAULT_HIGH_THRESHOLD, DEFAULT_LOW_THRESHOLD
from .wtop import CONTROLLER_GAIN_SCHEDULE, DEFAULT_P_MAX

__all__ = [
    "BatchedControllerBank",
    "BatchedStaticBank",
    "BatchedSegmentMeter",
    "BatchedKwTracker",
    "BatchedWTopBank",
    "BatchedToraBank",
]


class BatchedControllerBank:
    """Interface the batched simulator drives (no-op by default)."""

    #: Period (seconds) of :meth:`on_tick`, or None to disable ticks.
    tick_interval: Optional[float] = None

    def on_packet_received(self, cell_mask: np.ndarray, now: np.ndarray) -> None:
        """Notify cells in ``cell_mask`` of one successful reception at ``now``."""
        return None

    def on_tick(self, cell_mask: np.ndarray, now: np.ndarray) -> None:
        """Periodic timer hook closing starved measurement segments."""
        return None

    def primary_control(self) -> Optional[np.ndarray]:
        """Per-cell scalar control value for convergence time lines, or None."""
        return None

    def probe_state(self) -> dict:
        """Controller-state snapshot for simulator probes (read-only).

        Returns ``{"control": per-cell array}`` when the bank advertises a
        primary control value; adaptive banks may add further 1-D series
        (e.g. TORA's ``ctrl_stage``).  Must never mutate bank state.
        """
        control = self.primary_control()
        if control is None:
            return {}
        return {"control": control}


class BatchedStaticBank(BatchedControllerBank):
    """Counterpart of :class:`~repro.core.controller.StaticController`."""


class BatchedSegmentMeter:
    """Per-cell fixed-length measurement segments (Algorithm 1, lines 3-14)."""

    def __init__(self, num_cells: int, update_period: float) -> None:
        if update_period <= 0:
            raise ValueError("update_period must be positive")
        self._period = float(update_period)
        self._bits = np.zeros(num_cells, dtype=np.int64)
        self._start = np.full(num_cells, np.nan)
        self._all_started = False

    @property
    def update_period(self) -> float:
        return self._period

    def observe(self, cell_mask: np.ndarray, payload_bits: int,
                now: np.ndarray) -> np.ndarray:
        """Add one reception per cell in ``cell_mask``; return closed cells."""
        if not self._all_started:
            unset = cell_mask & np.isnan(self._start)
            self._start[unset] = now[unset]
            self._all_started = not np.isnan(self._start).any()
        self._bits[cell_mask] += payload_bits
        closed = cell_mask & (now - self._start >= self._period)
        return closed

    def maybe_close(self, cell_mask: np.ndarray, now: np.ndarray) -> np.ndarray:
        """Close expired segments without a packet arrival; return closed cells."""
        if not self._all_started:
            unset = cell_mask & np.isnan(self._start)
            self._start[unset] = now[unset]
            self._all_started = not np.isnan(self._start).any()
            closed = cell_mask & ~unset & (now - self._start >= self._period)
        else:
            closed = cell_mask & (now - self._start >= self._period)
        return closed

    def throughput_and_restart(self, closed: np.ndarray,
                               now: np.ndarray) -> np.ndarray:
        """Throughput (bits/s) of the cells in ``closed``; restart their segments."""
        throughput = self._bits[closed] / self._period
        self._bits[closed] = 0
        self._start[closed] = now[closed]
        return throughput


class BatchedKwTracker:
    """Vectorized two-sided Kiefer-Wolfowitz state machine over cells."""

    def __init__(
        self,
        num_cells: int,
        initial: float = 0.5,
        schedule: GainSchedule = CONTROLLER_GAIN_SCHEDULE,
        initial_k: int = 2,
    ) -> None:
        if not 0.0 <= initial <= 1.0:
            raise ValueError("initial value must lie within [0, 1]")
        if initial_k < 1:
            raise ValueError("initial_k must be at least 1")
        self._schedule = schedule
        self.center = np.full(num_cells, float(initial))
        self.k = np.full(num_cells, int(initial_k), dtype=np.int64)
        self.plus_side = np.ones(num_cells, dtype=bool)
        self.plus_measurement = np.full(num_cells, np.nan)
        self.updates = np.zeros(num_cells, dtype=np.int64)
        self._probe_cache: Optional[np.ndarray] = None
        #: Monotonic state-change counter; consumers cache derived arrays
        #: (advertised probabilities etc.) keyed on it.
        self.version = 0

    def _b(self, k: np.ndarray) -> np.ndarray:
        return self._schedule.b0 / k ** self._schedule.gamma

    def _a(self, k: np.ndarray) -> np.ndarray:
        return self._schedule.a0 / k ** self._schedule.alpha

    def probe(self) -> np.ndarray:
        """Per-cell control value to apply during the next segment."""
        if self._probe_cache is None:
            bk = self._b(self.k.astype(np.float64))
            self._probe_cache = np.where(
                self.plus_side,
                np.minimum(self.center + bk, 1.0),
                np.maximum(self.center - bk, 0.0),
            )
        return self._probe_cache

    def observe(self, cell_mask: np.ndarray, measurement: np.ndarray) -> np.ndarray:
        """Record measurements for cells in ``cell_mask``; return completed pairs."""
        was_plus = cell_mask & self.plus_side
        was_minus = cell_mask & ~self.plus_side
        self.plus_measurement[was_plus] = measurement[was_plus]
        self.plus_side[was_plus] = False
        if np.any(was_minus):
            k = self.k[was_minus].astype(np.float64)
            gradient = (
                self.plus_measurement[was_minus] - measurement[was_minus]
            ) / self._b(k)
            self.center[was_minus] = np.clip(
                self.center[was_minus] + self._a(k) * gradient, 0.0, 1.0
            )
            self.k[was_minus] += 1
            self.plus_side[was_minus] = True
            self.plus_measurement[was_minus] = np.nan
            self.updates[was_minus] += 1
        self._probe_cache = None
        self.version += 1
        return was_minus

    def reset_cells(self, cell_mask: np.ndarray, center: float) -> None:
        """TORA stage-shift reset: new centre, ``k`` stepped back one pair."""
        self.center[cell_mask] = center
        self.k[cell_mask] = np.maximum(self.k[cell_mask] - 1, 1)
        self.plus_side[cell_mask] = True
        self.plus_measurement[cell_mask] = np.nan
        self._probe_cache = None
        self.version += 1


class _BatchedAdaptiveBank(BatchedControllerBank):
    """Shared meter + tracker plumbing of the two adaptive banks."""

    def __init__(self, num_cells: int, phy: PhyParameters, update_period: float,
                 initial: float, throughput_scale: float, initial_k: int) -> None:
        if throughput_scale <= 0:
            raise ValueError("throughput_scale must be positive")
        self._payload_bits = int(phy.payload_bits)
        self._scale = float(throughput_scale)
        self._meter = BatchedSegmentMeter(num_cells, update_period)
        self._tracker = BatchedKwTracker(num_cells, initial=initial,
                                         initial_k=initial_k)
        self.tick_interval = float(update_period)

    @property
    def tracker(self) -> BatchedKwTracker:
        return self._tracker

    def _apply_measurement(self, closed: np.ndarray, now: np.ndarray) -> None:
        throughput = self._meter.throughput_and_restart(closed, now)
        measurement = np.zeros(now.shape)
        measurement[closed] = throughput / self._scale
        completed = self._tracker.observe(closed, measurement)
        self._after_pair(completed)

    def _after_pair(self, completed: np.ndarray) -> None:
        """Hook for TORA's stage-shift rule; default no-op."""
        return None

    def on_packet_received(self, cell_mask, now):
        closed = self._meter.observe(cell_mask, self._payload_bits, now)
        if np.any(closed):
            self._apply_measurement(closed, now)

    def on_tick(self, cell_mask, now):
        closed = self._meter.maybe_close(cell_mask, now)
        if np.any(closed):
            self._apply_measurement(closed, now)


class BatchedWTopBank(_BatchedAdaptiveBank):
    """Vectorized wTOP-CSMA controller (Algorithm 1) over a batch of cells.

    As in :class:`~repro.core.wtop.WTopCsmaController`, the optimiser works on
    the log-domain control variable and the advertised attempt probability is
    ``mapping.to_parameter(probe)``.
    """

    def __init__(
        self,
        num_cells: int,
        phy: PhyParameters,
        update_period: float = 0.25,
        initial_control: float = 0.5,
        initial_p: Optional[float] = None,
        throughput_scale: float = DEFAULT_BIT_RATE,
        initial_k: int = 2,
    ) -> None:
        self._mapping = LogMapping(low=1e-4, high=DEFAULT_P_MAX)
        if initial_p is not None:
            initial_control = self._mapping.to_control(initial_p)
        if not 0.0 <= initial_control <= 1.0:
            raise ValueError("initial_control must lie in [0, 1]")
        super().__init__(num_cells, phy, update_period, initial_control,
                         throughput_scale, initial_k)
        self._log_low = math.log(self._mapping.low)
        self._log_ratio = math.log(self._mapping.high / self._mapping.low)
        self._p_cache: Optional[np.ndarray] = None
        self._p_version = -1

    @property
    def version(self) -> int:
        """State-change counter for cell-wise caching of advertised values."""
        return self._tracker.version

    def advertised_p(self) -> np.ndarray:
        """Per-cell attempt probability currently advertised to stations."""
        if self._p_version != self._tracker.version:
            probe = self._tracker.probe()
            p = np.exp(self._log_low + probe * self._log_ratio)
            self._p_cache = np.clip(p, self._mapping.low, self._mapping.high)
            self._p_version = self._tracker.version
        return self._p_cache

    def primary_control(self):
        return self.advertised_p()


class BatchedToraBank(_BatchedAdaptiveBank):
    """Vectorized TORA-CSMA controller (Algorithm 2) over a batch of cells."""

    def __init__(
        self,
        num_cells: int,
        phy: PhyParameters,
        update_period: float = 0.25,
        initial_p0: float = 0.5,
        initial_stage: int = 0,
        low_threshold: float = DEFAULT_LOW_THRESHOLD,
        high_threshold: float = DEFAULT_HIGH_THRESHOLD,
        throughput_scale: float = DEFAULT_BIT_RATE,
        initial_k: int = 2,
    ) -> None:
        num_stages = phy.num_backoff_stages
        if not 0 <= initial_stage <= max(num_stages - 1, 0):
            raise ValueError(f"initial_stage must lie in [0, {num_stages - 1}]")
        if not 0.0 <= low_threshold < high_threshold <= 1.0:
            raise ValueError("require 0 <= low_threshold < high_threshold <= 1")
        super().__init__(num_cells, phy, update_period, initial_p0,
                         throughput_scale, initial_k)
        self._max_stage = max(num_stages - 1, 0)
        self._low_threshold = float(low_threshold)
        self._high_threshold = float(high_threshold)
        self._stage = np.full(num_cells, int(initial_stage), dtype=np.int64)

    def _after_pair(self, completed: np.ndarray) -> None:
        if not np.any(completed):
            return
        center = self._tracker.center
        shift_up = completed & (center <= self._low_threshold) & (
            self._stage < self._max_stage
        )
        shift_down = completed & (center >= self._high_threshold) & (self._stage > 0)
        if np.any(shift_up) or np.any(shift_down):
            self._stage[shift_up] += 1
            self._stage[shift_down] -= 1
            self._tracker.reset_cells(shift_up | shift_down, 0.5)

    def advertised_p0(self) -> np.ndarray:
        """Per-cell reset probability currently advertised to stations."""
        return self._tracker.probe()

    def advertised_stage(self) -> np.ndarray:
        """Per-cell reset stage ``j`` currently advertised to stations."""
        return self._stage

    def primary_control(self):
        return self.advertised_p0()

    def probe_state(self) -> dict:
        return {
            "control": self.advertised_p0(),
            "ctrl_stage": self.advertised_stage().astype(np.float64),
        }
