"""wTOP-CSMA: Weighted-fair Throughput-Optimal p-persistent CSMA (Algorithm 1).

The access point measures throughput over segments of length
``UPDATE_PERIOD`` while advertising the attempt probability derived from
``x = pval + b_k`` during the first segment of each frame and from
``x = pval - b_k`` during the second.  After each (+, -) pair the centre
``pval`` moves along the stochastic throughput gradient (Kiefer-Wolfowitz).
Stations map the advertised ``p`` through their weight (Lemma 1) to obtain
their own attempt probability.

Two implementation calibrations, recorded in DESIGN.md, adapt the pseudo code
to something that converges in practice:

* **Throughput normalisation.**  The raw segment throughput (bits/s) is
  divided by ``throughput_scale`` (default: the channel bit rate) so the
  stochastic gradient has magnitude O(1); otherwise the ``a_k (y+ - y-)/b_k``
  step would saturate the clipping bounds on every update.
* **Log-domain control variable.**  By default the optimiser works on
  ``x = log(p)`` rescaled to [0, 1] (see :class:`~repro.core.mapping.LogMapping`),
  because the optimum ``p* ~ 1/N`` is far smaller than the additive
  perturbations ``b_k`` early in the run.  Quasi-concavity is preserved under
  the monotone reparameterisation, so Theorem 2's argument still applies.
  Pass ``mapping=LinearMapping(0.0, 0.9)`` for the paper-literal behaviour.

The controller is transport-agnostic: it only needs to be told about
successful receptions (``on_packet_received``), queried for the control
values to embed in ACKs (``control``), and poked periodically (``on_tick``)
so that a starving probe value cannot stall adaptation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..phy.constants import DEFAULT_BIT_RATE
from .controller import AccessPointController, ControlUpdate, SegmentThroughputMeter
from .kiefer_wolfowitz import GainSchedule, TwoSidedGradientTracker
from .mapping import ControlMapping, LinearMapping, LogMapping

__all__ = [
    "WTopCsmaController",
    "DEFAULT_UPDATE_PERIOD",
    "DEFAULT_P_MAX",
    "CONTROLLER_GAIN_SCHEDULE",
]

#: The paper simulates with an UPDATE_PERIOD of 250 ms.
DEFAULT_UPDATE_PERIOD = 0.25

#: Algorithm 1 clips the advertised probability to at most 0.9.
DEFAULT_P_MAX = 0.9

#: Gain schedule used by the controllers.  The exponents are the paper's
#: (``a_k ~ 1/k``, ``b_k ~ 1/k^(1/3)``); the scales are calibrated so that
#: probes stay informative once throughput is normalised to [0, 1].
CONTROLLER_GAIN_SCHEDULE = GainSchedule(a0=0.4, b0=0.2, alpha=1.0, gamma=1.0 / 3.0)


class WTopCsmaController(AccessPointController):
    """AP-side wTOP-CSMA controller.

    Parameters
    ----------
    update_period:
        Segment length ``UPDATE_PERIOD`` in seconds.  The paper recommends a
        value covering roughly 500 successful transmissions and uses 250 ms
        in its ns-3 runs.
    initial_control:
        Starting centre value in the optimiser domain ``[0, 1]`` (0.5 by
        default, the midpoint of the mapping range — the paper starts
        ``pval`` at 0.5 as well).
    mapping:
        How the optimiser variable translates into the advertised attempt
        probability.  Default: log-uniform over ``[1e-4, 0.5]``.
    schedule:
        Kiefer-Wolfowitz gain sequences.
    throughput_scale:
        Divisor applied to measured throughput before it enters the gradient
        (default: the 54 Mbps channel rate).
    initial_k:
        First iteration index (paper: 2).
    """

    name = "wTOP-CSMA"

    def __init__(
        self,
        update_period: float = DEFAULT_UPDATE_PERIOD,
        initial_control: float = 0.5,
        mapping: Optional[ControlMapping] = None,
        schedule: GainSchedule = CONTROLLER_GAIN_SCHEDULE,
        throughput_scale: float = DEFAULT_BIT_RATE,
        initial_k: int = 2,
        initial_p: Optional[float] = None,
    ) -> None:
        if throughput_scale <= 0:
            raise ValueError("throughput_scale must be positive")
        self._mapping = mapping or LogMapping(low=1e-4, high=DEFAULT_P_MAX)
        if initial_p is not None:
            initial_control = self._mapping.to_control(initial_p)
        if not 0.0 <= initial_control <= 1.0:
            raise ValueError("initial_control must lie in [0, 1]")
        self._update_period = float(update_period)
        self._initial_control = float(initial_control)
        self._schedule = schedule
        self._throughput_scale = float(throughput_scale)
        self._initial_k = int(initial_k)
        self._meter = SegmentThroughputMeter(update_period)
        self._tracker = TwoSidedGradientTracker(
            initial=initial_control,
            schedule=schedule,
            bounds=(0.0, 1.0),
            probe_bounds=(0.0, 1.0),
            initial_k=initial_k,
        )
        self._history: List[ControlUpdate] = []

    # ------------------------------------------------------------------
    # AccessPointController interface
    # ------------------------------------------------------------------
    def on_packet_received(self, source: int, payload_bits: int, now: float) -> None:
        """Accumulate received bits; close segments and update ``pval``."""
        throughput = self._meter.observe(payload_bits, now)
        if throughput is not None:
            self._apply_measurement(throughput, now)

    def on_tick(self, now: float) -> bool:
        """Close an expired segment even if no packet arrived during it."""
        throughput = self._meter.maybe_close(now)
        if throughput is None:
            return False
        self._apply_measurement(throughput, now)
        return True

    @property
    def tick_interval(self) -> Optional[float]:
        return self._update_period

    def control(self) -> Dict[str, float]:
        """Control mapping advertised in ACKs: the probe probability ``p``."""
        return {"p": self.advertised_p}

    def history(self) -> Tuple[ControlUpdate, ...]:
        return tuple(self._history)

    def reset(self) -> None:
        self._meter = SegmentThroughputMeter(self._update_period)
        self._tracker = TwoSidedGradientTracker(
            initial=self._initial_control,
            schedule=self._schedule,
            bounds=(0.0, 1.0),
            probe_bounds=(0.0, 1.0),
            initial_k=self._initial_k,
        )
        self._history.clear()

    # ------------------------------------------------------------------
    def _apply_measurement(self, throughput_bps: float, now: float) -> None:
        self._tracker.observe(throughput_bps / self._throughput_scale)
        self._history.append(
            ControlUpdate(time=now, control=self.control(), throughput_bps=throughput_bps)
        )

    # ------------------------------------------------------------------
    # Introspection used by experiments and tests
    # ------------------------------------------------------------------
    @property
    def update_period(self) -> float:
        return self._update_period

    @property
    def mapping(self) -> ControlMapping:
        return self._mapping

    @property
    def center(self) -> float:
        """Current centre estimate in the optimiser domain ``[0, 1]``."""
        return self._tracker.center

    @property
    def center_p(self) -> float:
        """Current centre estimate mapped to an attempt probability."""
        return self._mapping.to_parameter(self._tracker.center)

    @property
    def advertised_p(self) -> float:
        """The probability currently advertised to stations."""
        return self._mapping.to_parameter(self._tracker.probe)

    @property
    def iteration(self) -> int:
        """Kiefer-Wolfowitz iteration counter ``k``."""
        return self._tracker.iteration

    @property
    def updates(self) -> int:
        """Number of completed gradient updates."""
        return self._tracker.updates

    def segments(self) -> Tuple[Tuple[float, float], ...]:
        """Measured segments ``(end_time, throughput_bps)``."""
        return self._meter.segments()

    def convergence_trace(self) -> Tuple[Tuple[float, float], ...]:
        """``(time, p)`` samples for Figure 9 style convergence plots."""
        return tuple((update.time, update.control["p"]) for update in self._history)
