"""Access-point controller interface.

The paper's algorithms are *centralised*: the AP measures throughput over
fixed-length segments (``UPDATE_PERIOD``), runs the Kiefer-Wolfowitz update
and broadcasts the resulting control values in ACK frames.  Both the
event-driven and the slotted simulators (and, in principle, a real AP) drive
a controller through the same minimal interface:

* :meth:`AccessPointController.on_packet_received` — called once per
  successfully received data frame with its payload size and the reception
  time (seconds);
* :meth:`AccessPointController.control` — the parameter mapping currently
  advertised in ACKs (e.g. ``{"p": 0.07}`` or ``{"p0": 0.4, "stage": 1}``).

:class:`SegmentThroughputMeter` factors out the shared bookkeeping of
accumulating ``bytes_recd`` and closing a segment when ``UPDATE_PERIOD``
elapses, exactly as in the pseudo code of Algorithms 1 and 2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "ControlUpdate",
    "AccessPointController",
    "StaticController",
    "SegmentThroughputMeter",
]


@dataclass(frozen=True)
class ControlUpdate:
    """A record of one controller update, kept for convergence plots.

    Attributes
    ----------
    time:
        Simulation time (seconds) at which the update happened.
    control:
        The advertised control values immediately after the update.
    throughput_bps:
        Throughput measured over the segment that triggered the update.
    """

    time: float
    control: Mapping[str, float]
    throughput_bps: float


class AccessPointController(ABC):
    """Base class of AP-side adaptation algorithms."""

    #: Human-readable name used in experiment reports.
    name: str = "controller"

    @abstractmethod
    def on_packet_received(self, source: int, payload_bits: int, now: float) -> None:
        """Notify the controller of a successfully received data frame."""

    @abstractmethod
    def control(self) -> Dict[str, float]:
        """Control values to piggy-back on the next ACK."""

    def on_tick(self, now: float) -> bool:
        """Periodic timer hook (e.g. at beacon intervals).

        Adaptive controllers use this to close a measurement segment even when
        no packet arrives — otherwise a probe value that starves the channel
        (e.g. a collision-saturating attempt probability) would never be
        revisited.  Returns True when the control values changed so the caller
        can re-broadcast them (the paper notes the parameters may equally be
        carried in beacon frames).
        """
        return False

    @property
    def tick_interval(self) -> Optional[float]:
        """Suggested period (seconds) for :meth:`on_tick`; None to disable."""
        return None

    def history(self) -> Tuple[ControlUpdate, ...]:
        """Updates performed so far (empty for non-adaptive controllers)."""
        return ()

    def reset(self) -> None:
        """Return the controller to its initial state."""


class StaticController(AccessPointController):
    """A controller that always advertises the same values.

    Used for open-loop sweeps (Figures 2, 4, 5, 13) where the control
    variable is fixed externally, and as the no-op controller for standard
    802.11 runs.
    """

    name = "static"

    def __init__(self, control: Optional[Mapping[str, float]] = None) -> None:
        self._control = dict(control or {})

    def on_packet_received(self, source: int, payload_bits: int, now: float) -> None:
        # Nothing to adapt.
        return None

    def control(self) -> Dict[str, float]:
        return dict(self._control)

    def set_control(self, control: Mapping[str, float]) -> None:
        """Replace the advertised values (e.g. between sweep points)."""
        self._control = dict(control)


class SegmentThroughputMeter:
    """Accumulates received bytes and closes fixed-length measurement segments.

    Mirrors lines 3-14 of Algorithm 1: every successful packet adds its
    length to ``bytes_recd``; once ``UPDATE_PERIOD`` has elapsed since the
    segment started, the segment's throughput ``bytes_recd / UPDATE_PERIOD``
    is reported and the accumulator restarts.

    The meter is deliberately clock-driven by the caller (times are passed
    in), so it works identically under simulated and wall-clock time.
    """

    def __init__(self, update_period: float) -> None:
        if update_period <= 0:
            raise ValueError("update_period must be positive")
        self._update_period = float(update_period)
        self._bits_received = 0
        self._segment_start: Optional[float] = None
        self._segments: List[Tuple[float, float]] = []

    @property
    def update_period(self) -> float:
        return self._update_period

    @property
    def bits_pending(self) -> int:
        """Bits accumulated in the currently open segment."""
        return self._bits_received

    def observe(self, payload_bits: int, now: float) -> Optional[float]:
        """Add a successful reception; return the segment throughput if closed.

        Returns
        -------
        Throughput in bits/s of the segment that just completed, or None if
        the current segment is still open.
        """
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
        if self._segment_start is None:
            self._segment_start = now
        self._bits_received += payload_bits
        if now - self._segment_start < self._update_period:
            return None
        throughput = self._bits_received / self._update_period
        self._segments.append((now, throughput))
        self._bits_received = 0
        self._segment_start = now
        return throughput

    def maybe_close(self, now: float) -> Optional[float]:
        """Close the current segment if ``UPDATE_PERIOD`` has elapsed.

        Unlike :meth:`observe` this does not require a packet arrival, so a
        segment with zero receptions still reports 0 bits/s once its period
        is over.  Returns the segment throughput or None if the segment is
        still open.
        """
        if self._segment_start is None:
            self._segment_start = now
            return None
        if now - self._segment_start < self._update_period:
            return None
        throughput = self._bits_received / self._update_period
        self._segments.append((now, throughput))
        self._bits_received = 0
        self._segment_start = now
        return throughput

    def force_close(self, now: float) -> Optional[float]:
        """Close the current segment early (used at end of simulation)."""
        if self._segment_start is None:
            return None
        elapsed = now - self._segment_start
        if elapsed <= 0:
            return None
        throughput = self._bits_received / elapsed
        self._segments.append((now, throughput))
        self._bits_received = 0
        self._segment_start = now
        return throughput

    def segments(self) -> Tuple[Tuple[float, float], ...]:
        """Completed segments as ``(end_time, throughput_bps)`` tuples."""
        return tuple(self._segments)

    def reset(self) -> None:
        self._bits_received = 0
        self._segment_start = None
        self._segments.clear()
