"""Topology: node placement, connectivity graphs and hidden-node analysis."""

from .graph import ConnectivityGraph, HiddenNodeReport, build_connectivity
from .placement import (
    AP_POSITION,
    Placement,
    Position,
    clustered_placement,
    explicit_placement,
    grid_placement,
    ring_placement,
    uniform_disc_placement,
)
from .scenarios import (
    FULLY_CONNECTED_RING_RADIUS,
    HIDDEN_DISC_RADIUS_LARGE,
    HIDDEN_DISC_RADIUS_SMALL,
    fully_connected_scenario,
    hidden_node_scenario,
    paper_propagation,
    two_cluster_hidden_scenario,
)

__all__ = [
    "ConnectivityGraph",
    "HiddenNodeReport",
    "build_connectivity",
    "AP_POSITION",
    "Placement",
    "Position",
    "clustered_placement",
    "explicit_placement",
    "grid_placement",
    "ring_placement",
    "uniform_disc_placement",
    "FULLY_CONNECTED_RING_RADIUS",
    "HIDDEN_DISC_RADIUS_LARGE",
    "HIDDEN_DISC_RADIUS_SMALL",
    "fully_connected_scenario",
    "hidden_node_scenario",
    "paper_propagation",
    "two_cluster_hidden_scenario",
]
