"""Pre-packaged network scenarios used throughout the paper's evaluation.

These helpers combine a placement strategy with the paper's propagation
parameters (decode range 16 units, carrier-sense range 24 units) and return a
ready :class:`~repro.topology.graph.ConnectivityGraph`.

Three scenario families cover every figure:

* :func:`fully_connected_scenario` — ring of radius 8 (Figures 2, 3, 13,
  Table II, and the "without hidden nodes" rows of Figure 1 / Table III).
* :func:`hidden_node_scenario` — uniform placement in a disc of radius 16 or
  20 (Figures 1, 4, 5, 6, 7 and Table III "with hidden nodes").
* :func:`two_cluster_hidden_scenario` — a deterministic topology with two
  groups guaranteed to be mutually hidden, used in unit tests and examples
  where a *repeatable* hidden configuration is needed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..phy.propagation import PropagationModel, RangeBasedPropagation
from .graph import ConnectivityGraph
from .placement import (
    Placement,
    clustered_placement,
    ring_placement,
    uniform_disc_placement,
)

__all__ = [
    "paper_propagation",
    "fully_connected_scenario",
    "hidden_node_scenario",
    "two_cluster_hidden_scenario",
    "FULLY_CONNECTED_RING_RADIUS",
    "HIDDEN_DISC_RADIUS_SMALL",
    "HIDDEN_DISC_RADIUS_LARGE",
]

#: Ring radius of the paper's fully connected configuration.
FULLY_CONNECTED_RING_RADIUS = 8.0

#: Disc radius of the paper's first hidden-node configuration (Fig. 6).
HIDDEN_DISC_RADIUS_SMALL = 16.0

#: Disc radius of the paper's second hidden-node configuration (Fig. 7).
HIDDEN_DISC_RADIUS_LARGE = 20.0


def paper_propagation() -> RangeBasedPropagation:
    """The paper's propagation setup: decode 16 units, sense 24 units."""
    return RangeBasedPropagation(transmission_range=16.0, carrier_sense_range=24.0)


def fully_connected_scenario(
    num_stations: int,
    radius: float = FULLY_CONNECTED_RING_RADIUS,
    propagation: Optional[PropagationModel] = None,
) -> ConnectivityGraph:
    """Ring placement guaranteed to produce a fully connected network."""
    propagation = propagation or paper_propagation()
    placement = ring_placement(num_stations, radius=radius)
    graph = ConnectivityGraph(placement, propagation)
    if not graph.is_fully_connected():
        raise ValueError(
            "requested fully connected scenario produced hidden pairs; "
            "reduce the ring radius or enlarge the carrier-sense range"
        )
    return graph


def hidden_node_scenario(
    num_stations: int,
    rng: np.random.Generator,
    radius: float = HIDDEN_DISC_RADIUS_SMALL,
    propagation: Optional[PropagationModel] = None,
    require_hidden_pairs: bool = False,
    max_attempts: int = 50,
) -> ConnectivityGraph:
    """Uniform disc placement, the paper's randomised hidden-node setup.

    With the default radius 16, hidden pairs occur with non-zero probability
    (the maximum station separation 32 exceeds the sensing range 24).  Set
    ``require_hidden_pairs=True`` to resample until at least one hidden pair
    exists, which matches the paper's "with hidden nodes" data points.

    When no propagation model is given, the decode range is extended to cover
    the requested disc radius (the paper's Section VI uses radii of 16 and
    20 m with every station still able to reach the AP); the carrier-sense
    range stays at 24 units so hidden pairs arise exactly when two stations
    are more than 24 units apart, as the paper states.
    """
    if propagation is None:
        decode = max(16.0, float(radius))
        propagation = RangeBasedPropagation(
            transmission_range=decode,
            carrier_sense_range=max(24.0, decode),
        )
    last: Optional[ConnectivityGraph] = None
    for _ in range(max_attempts):
        placement = uniform_disc_placement(num_stations, radius=radius, rng=rng)
        graph = ConnectivityGraph(placement, propagation)
        last = graph
        if not require_hidden_pairs or not graph.is_fully_connected():
            return graph
    if last is None:  # pragma: no cover - max_attempts >= 1 always
        raise RuntimeError("no placement generated")
    return last


def two_cluster_hidden_scenario(
    stations_per_cluster: int,
    rng: Optional[np.random.Generator] = None,
    separation: float = 28.0,
    spread: float = 1.0,
    propagation: Optional[PropagationModel] = None,
) -> ConnectivityGraph:
    """Two tight clusters placed symmetrically about the AP.

    Cluster centres sit at ``(+-separation/2, 0)``; with the default
    separation of 28 units both clusters are inside the AP decode range
    (14 <= 16) but outside each other's carrier-sense range (28 > 24), so
    every cross-cluster pair is hidden.  Intra-cluster nodes sense each other.
    """
    if stations_per_cluster < 1:
        raise ValueError("stations_per_cluster must be at least 1")
    propagation = propagation or paper_propagation()
    rng = rng or np.random.default_rng(0)
    half = separation / 2.0
    placement = clustered_placement(
        cluster_centers=[(-half, 0.0), (half, 0.0)],
        stations_per_cluster=[stations_per_cluster, stations_per_cluster],
        spread=spread,
        rng=rng,
    )
    graph = ConnectivityGraph(placement, propagation)
    return graph
