"""Connectivity and carrier-sensing graphs derived from placements.

Given a :class:`~repro.topology.placement.Placement` and a
:class:`~repro.phy.propagation.PropagationModel`, this module computes:

* the **sensing graph**: an undirected graph with an edge between stations
  that can carrier-sense each other's transmissions;
* the **decode graph**: edges between stations that can decode each other
  (only used for diagnostics — the paper's traffic is all uplink);
* the set of **hidden pairs**: pairs of stations that cannot sense each
  other (the complement of the sensing graph), which is exactly the paper's
  definition "node i is hidden from node j if i is outside the sensing range
  of j";
* per-station sensing sets ``T_t`` used by the event-driven simulator.

The class wraps :mod:`networkx` graphs so downstream analyses (components,
cliques, densities) are one call away, but exposes plain ``frozenset`` views
for the hot simulator path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from ..phy.propagation import PropagationModel, RangeBasedPropagation
from .placement import Placement

__all__ = ["ConnectivityGraph", "HiddenNodeReport", "build_connectivity"]


@dataclass(frozen=True)
class HiddenNodeReport:
    """Summary statistics about hidden pairs in a topology."""

    num_stations: int
    num_hidden_pairs: int
    num_possible_pairs: int
    stations_with_hidden_peer: int
    is_fully_connected: bool

    @property
    def hidden_pair_fraction(self) -> float:
        """Fraction of station pairs that are mutually hidden."""
        if self.num_possible_pairs == 0:
            return 0.0
        return self.num_hidden_pairs / self.num_possible_pairs


class ConnectivityGraph:
    """Sensing/decoding relationships between stations and the AP.

    Parameters
    ----------
    placement:
        Station and AP coordinates.
    propagation:
        Model deciding decode/sense reachability from pairwise distance.
    shadowing_db:
        Optional symmetric matrix of per-link extra losses in dB
        (``shape (N, N)``); positive entries make links worse.  This is how
        "obstacle" hidden nodes are injected without moving nodes.
    require_ap_coverage:
        When True (default) a :class:`ValueError` is raised if some station
        cannot be decoded by the AP — the paper's scenarios always keep every
        station inside the AP's decode range.
    """

    def __init__(
        self,
        placement: Placement,
        propagation: Optional[PropagationModel] = None,
        shadowing_db: Optional[np.ndarray] = None,
        require_ap_coverage: bool = True,
    ) -> None:
        self._placement = placement
        self._propagation = propagation or RangeBasedPropagation()
        self._propagation.validate()
        n = placement.num_stations
        if shadowing_db is not None:
            shadowing_db = np.asarray(shadowing_db, dtype=float)
            if shadowing_db.shape != (n, n):
                raise ValueError(
                    f"shadowing_db must have shape ({n}, {n}), got {shadowing_db.shape}"
                )
            if not np.allclose(shadowing_db, shadowing_db.T):
                raise ValueError("shadowing_db must be symmetric")
        self._shadowing_db = shadowing_db

        self._sense_sets: List[FrozenSet[int]] = []
        self._sensing_graph = nx.Graph()
        self._decode_graph = nx.Graph()
        self._sensing_graph.add_nodes_from(range(n))
        self._decode_graph.add_nodes_from(range(n))
        self._build(require_ap_coverage)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _effective_distance(self, i: int, j: int) -> float:
        """Distance between stations adjusted for per-link shadowing.

        Shadowing is folded into an *effective* distance so that both the
        range-based and the threshold-based propagation models honour it:
        an extra loss of ``L`` dB with path-loss exponent ``n`` is equivalent
        to multiplying the distance by ``10^(L / (10 n))``.
        """
        base = self._placement.distance(i, j)
        if self._shadowing_db is None:
            return base
        loss = float(self._shadowing_db[i, j])
        if loss == 0.0:
            return base
        exponent = getattr(self._propagation, "path_loss_exponent", 3.0)
        return base * (10.0 ** (loss / (10.0 * exponent)))

    def _build(self, require_ap_coverage: bool) -> None:
        n = self._placement.num_stations
        sense_sets: List[Set[int]] = [set() for _ in range(n)]
        for i in range(n):
            sense_sets[i].add(i)
            for j in range(i + 1, n):
                distance = self._effective_distance(i, j)
                if self._propagation.can_sense(distance):
                    sense_sets[i].add(j)
                    sense_sets[j].add(i)
                    self._sensing_graph.add_edge(i, j, distance=distance)
                if self._propagation.can_decode(distance):
                    self._decode_graph.add_edge(i, j, distance=distance)
        self._sense_sets = [frozenset(s) for s in sense_sets]

        uncovered = [
            i for i in range(n)
            if not self._propagation.can_decode(self._placement.distance_to_ap(i))
        ]
        self._uncovered_stations = tuple(uncovered)
        if require_ap_coverage and uncovered:
            raise ValueError(
                "stations outside the AP decode range: "
                + ", ".join(str(i) for i in uncovered)
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def placement(self) -> Placement:
        return self._placement

    @property
    def propagation(self) -> PropagationModel:
        return self._propagation

    @property
    def num_stations(self) -> int:
        return self._placement.num_stations

    @property
    def sensing_graph(self) -> nx.Graph:
        """Undirected graph of mutually-sensing station pairs."""
        return self._sensing_graph

    @property
    def decode_graph(self) -> nx.Graph:
        """Undirected graph of mutually-decoding station pairs."""
        return self._decode_graph

    @property
    def uncovered_stations(self) -> Tuple[int, ...]:
        """Stations the AP cannot decode (empty in valid paper scenarios)."""
        return self._uncovered_stations

    def sensing_set(self, station: int) -> FrozenSet[int]:
        """Stations (including itself) whose transmissions ``station`` senses.

        This is the paper's ``T_t`` restricted to stations; the AP is assumed
        to hear everyone and be heard by everyone.
        """
        return self._sense_sets[station]

    def sensing_sets(self) -> Tuple[FrozenSet[int], ...]:
        """All sensing sets, indexed by station id."""
        return tuple(self._sense_sets)

    def can_sense(self, i: int, j: int) -> bool:
        """True if station ``i`` senses station ``j``'s transmissions."""
        return j in self._sense_sets[i]

    # ------------------------------------------------------------------
    # Hidden-node analysis
    # ------------------------------------------------------------------
    def hidden_pairs(self) -> FrozenSet[Tuple[int, int]]:
        """All unordered pairs ``(i, j)`` that cannot sense each other."""
        n = self.num_stations
        pairs = {
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if j not in self._sense_sets[i]
        }
        return frozenset(pairs)

    def hidden_peers(self, station: int) -> FrozenSet[int]:
        """Stations hidden from ``station``."""
        everyone = set(range(self.num_stations))
        return frozenset(everyone - set(self._sense_sets[station]))

    def is_fully_connected(self) -> bool:
        """True when no hidden pair exists."""
        return not self.hidden_pairs()

    def hidden_node_report(self) -> HiddenNodeReport:
        """Aggregate hidden-node statistics for experiment reporting."""
        n = self.num_stations
        pairs = self.hidden_pairs()
        with_hidden = {i for pair in pairs for i in pair}
        possible = n * (n - 1) // 2
        return HiddenNodeReport(
            num_stations=n,
            num_hidden_pairs=len(pairs),
            num_possible_pairs=possible,
            stations_with_hidden_peer=len(with_hidden),
            is_fully_connected=not pairs,
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def sensing_components(self) -> List[Set[int]]:
        """Connected components of the sensing graph (mutually audible groups)."""
        return [set(c) for c in nx.connected_components(self._sensing_graph)]

    def sensing_density(self) -> float:
        """Edge density of the sensing graph in [0, 1]."""
        n = self.num_stations
        if n < 2:
            return 1.0
        return nx.density(self._sensing_graph)

    def adjacency_matrix(self) -> np.ndarray:
        """Boolean sensing adjacency matrix (diagonal True)."""
        n = self.num_stations
        matrix = np.zeros((n, n), dtype=bool)
        for i, sense in enumerate(self._sense_sets):
            for j in sense:
                matrix[i, j] = True
        return matrix

    # ------------------------------------------------------------------
    # Conflict-matrix views (the vectorized hidden-node backend's inputs)
    # ------------------------------------------------------------------
    def sensing_matrix(self) -> np.ndarray:
        """Boolean carrier-sense matrix ``S`` with ``S[i, j]`` true iff
        station ``i`` senses station ``j``'s transmissions.

        The matrix is symmetric (sensing is mutual in this model) and has a
        True diagonal (a station trivially "senses" itself; consumers that
        must ignore self-sensing, like the batched conflict simulator, zero
        the diagonal).  For a fully connected topology this degenerates to
        the all-ones matrix.
        """
        return self.adjacency_matrix()

    def hidden_matrix(self) -> np.ndarray:
        """Boolean hidden-pair matrix ``H = ~S`` off the diagonal.

        ``H[i, j]`` is True iff stations ``i`` and ``j`` are mutually hidden
        (neither can carrier-sense the other), which is exactly the set
        enumerated by :meth:`hidden_pairs`; the diagonal is always False.
        """
        matrix = ~self.sensing_matrix()
        np.fill_diagonal(matrix, False)
        return matrix


def build_connectivity(
    placement: Placement,
    propagation: Optional[PropagationModel] = None,
    shadowing_db: Optional[np.ndarray] = None,
) -> ConnectivityGraph:
    """Convenience wrapper mirroring :class:`ConnectivityGraph` construction."""
    return ConnectivityGraph(placement, propagation, shadowing_db)
