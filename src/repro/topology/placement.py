"""Node placement strategies.

The paper uses two placement configurations (Section I and VI):

* **Ring placement** — nodes placed uniformly on the edge of a disc of
  radius 8 centred at the AP.  With decode range 16 and carrier-sense range
  24 this is a fully connected network (maximum node separation is 16 <= 24).
* **Uniform disc placement** — nodes placed uniformly at random in a disc of
  radius 16 or 20 centred at the AP.  The maximum separation (32 or 40) can
  exceed the 24-unit sensing range, so hidden node pairs appear with non-zero
  probability.

All placements put the access point at the origin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Position",
    "Placement",
    "ring_placement",
    "uniform_disc_placement",
    "clustered_placement",
    "grid_placement",
    "explicit_placement",
    "AP_POSITION",
]

#: 2-D coordinate type used throughout the topology package.
Position = Tuple[float, float]

#: The access point always sits at the origin.
AP_POSITION: Position = (0.0, 0.0)


@dataclass(frozen=True)
class Placement:
    """A set of station positions plus the AP position.

    Attributes
    ----------
    stations:
        Positions of the ``N`` stations, indexed ``0 .. N-1``.
    ap:
        Position of the access point (always the origin for the paper's
        scenarios, but kept explicit for generality).
    description:
        Human-readable description used in experiment reports.
    """

    stations: Tuple[Position, ...]
    ap: Position = AP_POSITION
    description: str = ""

    @property
    def num_stations(self) -> int:
        return len(self.stations)

    def distance(self, i: int, j: int) -> float:
        """Euclidean distance between stations ``i`` and ``j``."""
        xi, yi = self.stations[i]
        xj, yj = self.stations[j]
        return math.hypot(xi - xj, yi - yj)

    def distance_to_ap(self, i: int) -> float:
        """Euclidean distance from station ``i`` to the AP."""
        xi, yi = self.stations[i]
        return math.hypot(xi - self.ap[0], yi - self.ap[1])

    def max_pairwise_distance(self) -> float:
        """Largest distance between any two stations (0 for < 2 stations)."""
        best = 0.0
        for i in range(self.num_stations):
            for j in range(i + 1, self.num_stations):
                best = max(best, self.distance(i, j))
        return best

    def as_array(self) -> np.ndarray:
        """Positions as an ``(N, 2)`` numpy array."""
        return np.asarray(self.stations, dtype=float).reshape(-1, 2)


def _validate_count(num_stations: int) -> None:
    if num_stations < 1:
        raise ValueError("num_stations must be at least 1")


def ring_placement(num_stations: int, radius: float = 8.0,
                   phase: float = 0.0) -> Placement:
    """Place stations evenly on a circle of ``radius`` around the AP.

    This is the paper's "no hidden nodes" configuration when
    ``2 * radius <= carrier-sense range``.
    """
    _validate_count(num_stations)
    if radius <= 0:
        raise ValueError("radius must be positive")
    positions: List[Position] = []
    for k in range(num_stations):
        angle = phase + 2.0 * math.pi * k / num_stations
        positions.append((radius * math.cos(angle), radius * math.sin(angle)))
    return Placement(
        stations=tuple(positions),
        description=f"ring(r={radius:g}, N={num_stations})",
    )


def uniform_disc_placement(num_stations: int, radius: float,
                           rng: np.random.Generator,
                           min_ap_distance: float = 0.0) -> Placement:
    """Place stations uniformly at random inside a disc of ``radius``.

    Uses the standard ``r = R * sqrt(u)`` transform so the spatial density is
    uniform over the disc area.  ``min_ap_distance`` optionally keeps nodes
    away from the AP itself.
    """
    _validate_count(num_stations)
    if radius <= 0:
        raise ValueError("radius must be positive")
    if not 0 <= min_ap_distance < radius:
        raise ValueError("min_ap_distance must lie in [0, radius)")
    positions: List[Position] = []
    for _ in range(num_stations):
        u = rng.uniform(min_ap_distance ** 2 / radius ** 2, 1.0)
        r = radius * math.sqrt(u)
        theta = rng.uniform(0.0, 2.0 * math.pi)
        positions.append((r * math.cos(theta), r * math.sin(theta)))
    return Placement(
        stations=tuple(positions),
        description=f"uniform-disc(r={radius:g}, N={num_stations})",
    )


def clustered_placement(cluster_centers: Sequence[Position],
                        stations_per_cluster: Sequence[int],
                        spread: float,
                        rng: np.random.Generator) -> Placement:
    """Place stations in Gaussian clusters around given centres.

    Useful for constructing *deterministic* hidden-node scenarios: two
    clusters placed farther apart than the carrier-sense range but both
    within decode range of the AP yield two mutually hidden groups.
    """
    if len(cluster_centers) != len(stations_per_cluster):
        raise ValueError("cluster_centers and stations_per_cluster lengths differ")
    if spread < 0:
        raise ValueError("spread must be non-negative")
    positions: List[Position] = []
    for (cx, cy), count in zip(cluster_centers, stations_per_cluster):
        if count < 0:
            raise ValueError("stations_per_cluster entries must be non-negative")
        for _ in range(count):
            positions.append((cx + rng.normal(0.0, spread),
                              cy + rng.normal(0.0, spread)))
    if not positions:
        raise ValueError("at least one station is required")
    return Placement(
        stations=tuple(positions),
        description=f"clusters(k={len(cluster_centers)}, N={len(positions)})",
    )


def grid_placement(rows: int, cols: int, spacing: float,
                   center_on_ap: bool = True) -> Placement:
    """Place stations on a regular ``rows x cols`` grid.

    Primarily a testing aid: distances are exactly known so connectivity and
    hidden-pair assertions can be written by hand.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be at least 1")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    x_offset = (cols - 1) * spacing / 2.0 if center_on_ap else 0.0
    y_offset = (rows - 1) * spacing / 2.0 if center_on_ap else 0.0
    positions = [
        (c * spacing - x_offset, r * spacing - y_offset)
        for r in range(rows)
        for c in range(cols)
    ]
    return Placement(
        stations=tuple(positions),
        description=f"grid({rows}x{cols}, d={spacing:g})",
    )


def explicit_placement(positions: Iterable[Position],
                       ap: Position = AP_POSITION,
                       description: str = "explicit") -> Placement:
    """Wrap explicit coordinates into a :class:`Placement`."""
    stations = tuple((float(x), float(y)) for x, y in positions)
    if not stations:
        raise ValueError("at least one station is required")
    return Placement(stations=stations, ap=ap, description=description)
