#!/usr/bin/env python3
"""Kiefer-Wolfowitz stochastic approximation, in isolation.

The paper's controllers are thin wrappers around the Kiefer-Wolfowitz scheme
of Section III-B.  This example uses the generic optimiser directly on the
*analytical* throughput function (Eq. 3) corrupted by measurement noise, so
the optimisation dynamics can be inspected without running a simulator.

Run with::

    python examples/kiefer_wolfowitz_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import optimal_attempt_probability, system_throughput_weighted
from repro.core import GainSchedule, KieferWolfowitzOptimizer, LogMapping
from repro.phy import PhyParameters

NUM_STATIONS = 40
NOISE_FRACTION = 0.05
ITERATIONS = 200


def main() -> None:
    phy = PhyParameters()
    rng = np.random.default_rng(3)
    mapping = LogMapping(low=1e-4, high=0.5)
    weights = [1.0] * NUM_STATIONS

    def noisy_throughput(x: float) -> float:
        """Noisy observation of S(p) with p = mapping(x), normalised to [0,1]."""
        p = mapping.to_parameter(x)
        throughput = system_throughput_weighted(p, weights, phy)
        noise = rng.normal(0.0, NOISE_FRACTION * throughput)
        return (throughput + noise) / phy.bit_rate

    # Start far from the optimum (x = 0.9 maps to p ~ 0.1, an order of
    # magnitude too aggressive for 40 stations) to make the descent visible.
    optimizer = KieferWolfowitzOptimizer(
        noisy_throughput, initial=0.9,
        schedule=GainSchedule(a0=0.4, b0=0.2),
    )
    trace = optimizer.run(ITERATIONS)

    p_star = optimal_attempt_probability(NUM_STATIONS, phy)
    optimum = system_throughput_weighted(p_star, weights, phy)

    print(f"Maximising throughput for N = {NUM_STATIONS} stations "
          f"({ITERATIONS} Kiefer-Wolfowitz iterations, "
          f"{100 * NOISE_FRACTION:.0f}% measurement noise)\n")
    print("iteration   p estimate    throughput (Mbps)")
    for k in (0, 10, 25, 50, 100, ITERATIONS):
        x = trace.centers[k]
        p = mapping.to_parameter(x)
        s = system_throughput_weighted(p, weights, phy) / 1e6
        print(f"{k:9d}   {p:10.5f}   {s:10.2f}")

    final_p = mapping.to_parameter(trace.final)
    final_s = system_throughput_weighted(final_p, weights, phy)
    print(f"\nAnalytical optimum: p* = {p_star:.5f}, S* = {optimum / 1e6:.2f} Mbps")
    print(f"Kiefer-Wolfowitz:   p  = {final_p:.5f}, S  = {final_s / 1e6:.2f} Mbps "
          f"({100 * final_s / optimum:.1f}% of optimum)")


if __name__ == "__main__":
    main()
