#!/usr/bin/env python3
"""Dynamic adaptation: wTOP-CSMA and TORA-CSMA as stations come and go.

Reproduces the spirit of the paper's Figures 8-11: the number of active
stations steps through 10 -> 30 -> 60 -> 20 -> 40 and the controllers
re-converge after every change.  The script prints a compact time series of
throughput and the control variable.

Run with::

    python examples/dynamic_adaptation.py
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.mac import tora_csma_scheme, wtop_csma_scheme
from repro.phy import PhyParameters
from repro.sim import SlottedSimulator, step_activity

SEGMENT_SECONDS = 6.0
STEPS = (10, 30, 60, 20, 40)


def run_controller(name, scheme, schedule, phy):
    simulator = SlottedSimulator(
        scheme, activity=schedule, phy=phy, seed=1, report_interval=1.0,
    )
    result = simulator.run(duration=SEGMENT_SECONDS * len(STEPS))
    control_by_time = dict(result.control_timeline)
    rows = []
    for time_s, throughput_bps in result.throughput_timeline:
        rows.append([
            f"{time_s:5.1f}",
            schedule.active_count(time_s),
            throughput_bps / 1e6,
            control_by_time.get(time_s, float("nan")),
        ])
    print(f"\n=== {name} ===")
    control_label = "p" if "wTOP" in name else "p0"
    print(format_table(["time (s)", "active N", "throughput (Mbps)", control_label],
                       rows))


def main() -> None:
    phy = PhyParameters()
    schedule = step_activity(
        [(index * SEGMENT_SECONDS, count) for index, count in enumerate(STEPS)]
    )
    print("Active-station schedule:",
          " -> ".join(str(count) for count in STEPS),
          f"(one step every {SEGMENT_SECONDS:.0f} s)")

    run_controller("wTOP-CSMA", wtop_csma_scheme(phy, update_period=0.05),
                   schedule, phy)
    run_controller("TORA-CSMA", tora_csma_scheme(phy, update_period=0.05),
                   schedule, phy)

    print("\nExpected: throughput dips briefly at each step and recovers as the "
          "Kiefer-Wolfowitz loop re-converges (paper, Figures 8-11).")


if __name__ == "__main__":
    main()
