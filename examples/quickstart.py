#!/usr/bin/env python3
"""Quickstart: compare MAC schemes on a fully connected WLAN.

Runs standard IEEE 802.11 DCF, IdleSense, wTOP-CSMA and TORA-CSMA on a fully
connected 20-station network (the paper's ring placement of radius 8) using
the fast slotted simulator, and compares the measured saturation throughput
with the analytical optimum of Eq. (3).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import optimal_attempt_probability, system_throughput_weighted
from repro.experiments import format_table
from repro.mac import (
    idlesense_scheme,
    standard_80211_scheme,
    tora_csma_scheme,
    wtop_csma_scheme,
)
from repro.phy import PhyParameters
from repro.sim import run_slotted

NUM_STATIONS = 20
MEASURE_SECONDS = 2.0


def main() -> None:
    phy = PhyParameters()

    schemes = {
        "Standard 802.11": (standard_80211_scheme(phy), 0.5),
        "IdleSense": (idlesense_scheme(phy), 3.0),
        "wTOP-CSMA": (wtop_csma_scheme(phy, update_period=0.05), 10.0),
        "TORA-CSMA": (tora_csma_scheme(phy, update_period=0.05), 10.0),
    }

    p_star = optimal_attempt_probability(NUM_STATIONS, phy)
    optimum_mbps = system_throughput_weighted(p_star, [1.0] * NUM_STATIONS, phy) / 1e6

    rows = []
    for name, (scheme, warmup) in schemes.items():
        result = run_slotted(
            scheme, num_stations=NUM_STATIONS,
            duration=MEASURE_SECONDS, warmup=warmup, phy=phy, seed=1,
        )
        rows.append([
            name,
            result.total_throughput_mbps,
            100.0 * result.total_throughput_mbps / optimum_mbps,
            result.collision_fraction,
        ])

    print(f"Fully connected network, N = {NUM_STATIONS} saturated stations")
    print(f"Analytical optimum (Eq. 3 at p* = {p_star:.4f}): {optimum_mbps:.2f} Mbps\n")
    print(format_table(
        ["scheme", "throughput (Mbps)", "% of optimum", "collision fraction"], rows
    ))
    print("\nExpected: the three adaptive schemes sit near the optimum while "
          "standard 802.11 falls short (paper, Figure 3).")


if __name__ == "__main__":
    main()
