#!/usr/bin/env python3
"""Hidden-node showdown: the paper's headline experiment in miniature.

Builds a random uniform-disc topology with hidden stations (the paper's
radius-16 placement), runs the four MAC schemes on the event-driven simulator
and prints the resulting throughput.  The qualitative outcome to look for
(paper, Figures 6-7 and Table III):

* IdleSense — which is near-optimal without hidden nodes — collapses;
* TORA-CSMA (exponential backoff, tuned online) comes out on top, usually
  ahead of the optimal p-persistent scheme wTOP-CSMA.

Run with::

    python examples/hidden_node_showdown.py [num_stations] [disc_radius]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.experiments import format_table
from repro.mac import (
    idlesense_scheme,
    standard_80211_scheme,
    tora_csma_scheme,
    wtop_csma_scheme,
)
from repro.phy import PhyParameters
from repro.sim import run_event_driven
from repro.topology import hidden_node_scenario


def main() -> None:
    num_stations = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    radius = float(sys.argv[2]) if len(sys.argv) > 2 else 16.0
    phy = PhyParameters()

    topology = hidden_node_scenario(
        num_stations, np.random.default_rng(7), radius=radius,
        require_hidden_pairs=True,
    )
    report = topology.hidden_node_report()
    print(f"Topology: {topology.placement.description}")
    print(f"Hidden pairs: {report.num_hidden_pairs} of {report.num_possible_pairs} "
          f"({100 * report.hidden_pair_fraction:.1f}% of station pairs)\n")

    schemes = {
        "Standard 802.11": (standard_80211_scheme(phy), 0.5),
        "IdleSense": (idlesense_scheme(phy), 2.0),
        "wTOP-CSMA": (wtop_csma_scheme(phy, update_period=0.05), 6.0),
        "TORA-CSMA": (tora_csma_scheme(phy, update_period=0.05), 6.0),
    }

    rows = []
    for name, (scheme, warmup) in schemes.items():
        result = run_event_driven(
            scheme, topology, duration=2.0, warmup=warmup, phy=phy, seed=1,
        )
        rows.append([
            name,
            result.total_throughput_mbps,
            result.collision_fraction,
            result.average_idle_slots_per_transmission,
        ])
        print(f"  finished {name}: {result.total_throughput_mbps:.2f} Mbps")

    print()
    print(format_table(
        ["scheme", "throughput (Mbps)", "collision fraction", "idle slots / tx"], rows
    ))
    print("\nExpected ordering with hidden nodes: TORA-CSMA >= wTOP-CSMA, "
          "both well above IdleSense (paper, Figures 6-7).")


if __name__ == "__main__":
    main()
