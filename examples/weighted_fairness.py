#!/usr/bin/env python3
"""Weighted fairness with wTOP-CSMA (the paper's Table II).

Ten stations with weights (1, 1, 1, 2, 2, 2, 3, 3, 3, 3) share a fully
connected channel.  Each station maps the AP-broadcast control variable ``p``
through its weight (Lemma 1), so its throughput ends up proportional to the
weight while the AP's Kiefer-Wolfowitz loop keeps the *total* throughput near
the optimum.

Run with::

    python examples/weighted_fairness.py
"""

from __future__ import annotations

from repro.analysis import weighted_fairness_report
from repro.experiments import format_table
from repro.mac import wtop_csma_scheme
from repro.phy import PhyParameters
from repro.sim import run_slotted

WEIGHTS = (1, 1, 1, 2, 2, 2, 3, 3, 3, 3)


def main() -> None:
    phy = PhyParameters()
    scheme = wtop_csma_scheme(phy, weights=WEIGHTS, update_period=0.05)
    result = run_slotted(
        scheme, num_stations=len(WEIGHTS), duration=3.0, warmup=10.0,
        phy=phy, seed=1,
    )

    report = weighted_fairness_report(result.per_station_throughput_bps, WEIGHTS)
    rows = [
        [f"station {station}", weight, throughput, normalized]
        for station, weight, throughput, normalized in report.rows()
    ]
    print("wTOP-CSMA weighted fairness (fully connected, 10 stations)\n")
    print(format_table(
        ["station", "weight", "throughput (Mbps)", "throughput / weight (Mbps)"], rows
    ))
    print(f"\nTotal throughput: {report.total_throughput_bps / 1e6:.2f} Mbps")
    print(f"Jain index of normalised throughput: {report.jain_index_normalized:.4f}")
    print(f"Worst relative deviation from weighted fairness: "
          f"{100 * report.max_relative_deviation:.1f}%")
    print("\nExpected: the last column is (nearly) identical across stations "
          "(paper, Table II).")


if __name__ == "__main__":
    main()
