"""Benchmark: Table III — average idle slots and throughput, with and without
hidden nodes (IdleSense vs wTOP-CSMA).

Shape to reproduce:

* IdleSense's achieved idle-slot average stays pinned near its fixed target
  (~3.1) in every configuration, yet its throughput collapses once hidden
  nodes appear;
* wTOP-CSMA's operating idle-slot level *changes* with the hidden-node
  configuration (it is higher with hidden nodes than without), and its
  throughput degrades far more gracefully.
"""

import numpy as np
import pytest

from repro.experiments.table3 import run_table3


@pytest.mark.benchmark(group="table3")
def test_table3_idle_slots(benchmark, bench_config_hidden, record_result):
    config = bench_config_hidden.evolve(adaptive_warmup=5.0, measure_duration=1.5)
    result = benchmark.pedantic(
        run_table3,
        kwargs={"config": config, "num_stations": 20, "hidden_case_seeds": (11, 12)},
        rounds=1, iterations=1,
    )
    record_result(result, "table3.txt")

    rows = {row.label: row.values for row in result.rows}
    connected = rows["Without hidden nodes"]
    hidden_cases = [values for label, values in rows.items() if "With hidden" in label]

    # IdleSense regulates its observed idle slots to ~its target everywhere.
    for values in [connected, *hidden_cases]:
        assert values["IdleSense idle slots"] == pytest.approx(3.1, rel=0.5)

    # Without hidden nodes both schemes deliver comparable, high throughput.
    assert connected["IdleSense throughput (Mbps)"] > 15.0
    assert connected["wTOP-CSMA throughput (Mbps)"] > 15.0

    # With hidden nodes IdleSense collapses while wTOP-CSMA retains most of
    # its throughput; wTOP's idle-slot operating point moves up.
    for values in hidden_cases:
        assert values["IdleSense throughput (Mbps)"] < 0.5 * values["wTOP-CSMA throughput (Mbps)"]
    wtop_idle_connected = connected["wTOP-CSMA idle slots"]
    assert max(v["wTOP-CSMA idle slots"] for v in hidden_cases) > wtop_idle_connected
