"""Ablation: slotted vs event-driven simulator (DESIGN.md design choice).

The reproduction keeps two simulators: the event-driven one (required for
hidden nodes) and the renewal-slot one (fast, fully connected only).  This
ablation verifies that on fully connected topologies they agree on throughput
— i.e. that using the fast simulator for the connected experiments does not
change any conclusion — and records their relative speed.
"""

import time

import pytest

from repro.mac.schemes import fixed_p_persistent_scheme, standard_80211_scheme
from repro.phy.constants import PhyParameters
from repro.sim.simulation import run_event_driven
from repro.sim.slotted import run_slotted
from repro.topology.scenarios import fully_connected_scenario


@pytest.mark.benchmark(group="ablation")
def test_ablation_simulator_agreement_and_speed(benchmark, record_result):
    phy = PhyParameters()
    num_stations = 20
    duration, warmup = 1.0, 0.2
    graph = fully_connected_scenario(num_stations)
    schemes = {
        "802.11": standard_80211_scheme(phy),
        "p-persistent(0.02)": fixed_p_persistent_scheme(0.02),
    }

    def run_both():
        rows = {}
        for name, scheme in schemes.items():
            t0 = time.perf_counter()
            slotted = run_slotted(scheme, num_stations, duration=duration,
                                  warmup=warmup, phy=phy, seed=3)
            t_slotted = time.perf_counter() - t0
            t0 = time.perf_counter()
            event = run_event_driven(scheme, graph, duration=duration,
                                     warmup=warmup, phy=phy, seed=3)
            t_event = time.perf_counter() - t0
            rows[name] = (slotted.total_throughput_mbps,
                          event.total_throughput_mbps,
                          t_event / max(t_slotted, 1e-9))
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)

    from repro.experiments.runner import ExperimentResult, ExperimentRow
    result = ExperimentResult(
        name="Ablation: simulators",
        description="Slotted vs event-driven simulator on a fully connected network",
        columns=("slotted (Mbps)", "event-driven (Mbps)", "event/slotted runtime"),
        rows=tuple(
            ExperimentRow(label=name, values={
                "slotted (Mbps)": slotted,
                "event-driven (Mbps)": event,
                "event/slotted runtime": ratio,
            })
            for name, (slotted, event, ratio) in rows.items()
        ),
        metadata={"num_stations": num_stations, "duration_s": duration},
    )
    record_result(result, "ablation_simulators.txt")

    for name, (slotted, event, ratio) in rows.items():
        assert event == pytest.approx(slotted, rel=0.12), name
        # The slotted simulator must actually be the faster substrate.
        assert ratio > 2.0, name
