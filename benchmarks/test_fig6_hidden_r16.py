"""Benchmark: Figure 6 — scheme comparison with hidden nodes (disc radius 16).

Shape to reproduce (the paper's headline hidden-node result):

* TORA-CSMA is the best of the four schemes (exponential backoff beats the
  optimal p-persistent scheme when hidden nodes exist);
* IdleSense collapses far below every other scheme;
* the adaptive stochastic-approximation schemes do not fall apart the way the
  model-based IdleSense does.
"""

import numpy as np
import pytest

from repro.experiments.fig6_7 import run_fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_hidden_r16(benchmark, bench_config_hidden, record_result):
    result = benchmark.pedantic(
        run_fig6, kwargs={"config": bench_config_hidden}, rounds=1, iterations=1
    )
    record_result(result, "fig6.txt")

    dcf = np.array(result.column("Standard 802.11"))
    wtop = np.array(result.column("wTOP-CSMA"))
    tora = np.array(result.column("TORA-CSMA"))
    idlesense = np.array(result.column("IdleSense"))

    # TORA-CSMA beats the p-persistent scheme and standard 802.11 on average.
    assert tora.mean() >= wtop.mean()
    assert tora.mean() >= 0.95 * dcf.mean()
    # IdleSense collapses with hidden nodes.
    assert idlesense.mean() < 0.5 * tora.mean()
    # Every adaptive-stochastic-approximation scheme retains usable throughput.
    assert np.all(tora > 5.0)
    assert np.all(wtop > 5.0)
