"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures with a
reduced-but-representative budget (single-digit minutes for the whole suite on
a laptop), prints the reproduced numbers and writes them to
``benchmarks/results/<experiment>.txt`` so ``bench_output.txt`` plus that
directory together document the reproduction.

Alongside each ``.txt``, every benchmark writes a machine-readable
``benchmarks/results/BENCH_<name>.json`` (wall clock, backend, grid shape,
cells and cells/sec where the test provides them) via the autouse
:func:`bench_json` fixture, so the performance trajectory is tracked between
PRs; ``benchmarks/check_benchmark_regression.py`` compares these against the
committed baselines in ``benchmarks/baselines/`` and CI fails on a >25 %
cells/sec regression of the batched backends.

The budgets live here so they can be tightened or relaxed in one place:

* ``bench_config_connected`` — fully connected sweeps (fast slotted simulator,
  so more node counts are affordable);
* ``bench_config_hidden`` — hidden-node sweeps (event-driven simulator, so
  fewer node counts and shorter runs).

For paper-scale budgets use :data:`repro.experiments.PAPER` instead (hours).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import tracemalloc

import pytest

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_result
from repro.experiments.runner import ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Budget for fully connected experiments (slotted simulator).
BENCH_CONNECTED = ExperimentConfig(
    node_counts=(10, 20, 40, 60),
    seeds=(1,),
    measure_duration=1.5,
    warmup=0.3,
    adaptive_warmup=8.0,
    update_period=0.05,
    report_interval=0.5,
    dynamic_segment_duration=6.0,
)

#: Budget for hidden-node experiments (event-driven simulator).
BENCH_HIDDEN = ExperimentConfig(
    node_counts=(10, 20),
    seeds=(1,),
    measure_duration=1.0,
    warmup=0.3,
    adaptive_warmup=4.0,
    update_period=0.05,
    report_interval=0.5,
    dynamic_segment_duration=6.0,
)


@pytest.fixture(scope="session")
def bench_config_connected() -> ExperimentConfig:
    return BENCH_CONNECTED


@pytest.fixture(scope="session")
def bench_config_hidden() -> ExperimentConfig:
    return BENCH_HIDDEN


def _bench_name(request) -> str:
    """``benchmarks/test_fig6_hidden_r16.py`` -> ``fig6_hidden_r16``.

    Modules with a single collected test (all current benchmarks) keep the
    short module-derived name, which is what the committed regression-gate
    baselines key on.  If a module ever grows a second test (or a
    parametrization), each test gets a suffixed file instead of the last
    writer silently overwriting the shared record.
    """
    stem = request.node.module.__name__.rsplit(".", 1)[-1]
    if stem.startswith("test_"):
        stem = stem[len("test_"):]
    module_id = request.node.nodeid.split("::")[0]
    siblings = [
        item for item in request.session.items
        if item.nodeid.split("::")[0] == module_id
    ]
    if len(siblings) > 1:
        test_id = "".join(
            ch if ch.isalnum() else "_" for ch in request.node.name
        )
        stem = f"{stem}__{test_id}"
    return stem


@pytest.fixture(autouse=True)
def bench_json(request):
    """Write ``results/BENCH_<name>.json`` for every benchmark test.

    The fixture yields a mutable mapping; tests may fill ``backend``,
    ``grid_shape``, ``cells`` and free-form ``extra`` fields (the speedup
    benchmarks record their measured ratios here).  ``cells_per_s`` is
    derived from ``cells`` and the measured wall clock when the test does
    not set it explicitly.  The wall clock always covers the whole test
    body, so even benchmarks that record nothing still contribute a timing
    trajectory between PRs.

    Peak memory is recorded additively (old baselines parse unchanged):

    * ``peak_rss_kb`` — the process high-water mark around the test
      (``getrusage``; essentially free, so it is always on).  The RSS
      counter is process-monotonic, so a test re-walking memory another
      test already claimed records ``0`` growth.
    * ``peak_traced_kb`` — exact Python allocation peak via
      :mod:`tracemalloc`, only when ``BENCH_TRACEMALLOC=1`` is exported:
      tracing every allocation slows the numpy-heavy batched kernels by
      more than an order of magnitude, so timing-derived metrics from such
      runs must not be compared against committed baselines.
    """
    meta = {"backend": None, "grid_shape": None, "cells": None,
            "cells_per_s": None, "extra": {}}
    trace_memory = os.environ.get("BENCH_TRACEMALLOC", "") == "1"
    rss_before = (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                  if resource is not None else None)
    if trace_memory and not tracemalloc.is_tracing():
        tracemalloc.start()
    else:
        trace_memory = False
    started = time.perf_counter()
    yield meta
    wall = time.perf_counter() - started
    peak_traced = None
    if trace_memory:
        peak_traced = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
    payload = {
        "name": request.node.name,
        "wall_clock_s": round(wall, 3),
        "backend": meta["backend"],
        "grid_shape": meta["grid_shape"],
        "cells": meta["cells"],
        "cells_per_s": meta["cells_per_s"],
    }
    if rss_before is not None:
        rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux (bytes on macOS, where a 1024x error is
        # obvious enough not to gate anything on).
        payload["peak_rss_kb"] = max(0, rss_after - rss_before)
    if peak_traced is not None:
        payload["peak_traced_kb"] = round(peak_traced / 1024, 1)
    if meta["cells_per_s"] is None and meta["cells"] and wall > 0:
        payload["cells_per_s"] = round(meta["cells"] / wall, 3)
    if meta["extra"]:
        payload.update(meta["extra"])
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{_bench_name(request)}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


@pytest.fixture
def record_result(bench_json):
    """Print an experiment result and persist it under benchmarks/results/.

    Also annotates the test's ``BENCH_<name>.json`` with the result's grid
    shape so the machine-readable record identifies what was measured.
    """

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _record(result: ExperimentResult, filename: str) -> ExperimentResult:
        text = format_result(result)
        print("\n" + text + "\n")
        (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")
        bench_json["grid_shape"] = [len(result.rows), len(result.columns)]
        bench_json["extra"].setdefault("experiment", filename.rsplit(".", 1)[0])
        return result

    return _record
