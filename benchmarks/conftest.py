"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures with a
reduced-but-representative budget (single-digit minutes for the whole suite on
a laptop), prints the reproduced numbers and writes them to
``benchmarks/results/<experiment>.txt`` so ``bench_output.txt`` plus that
directory together document the reproduction.

The budgets live here so they can be tightened or relaxed in one place:

* ``bench_config_connected`` — fully connected sweeps (fast slotted simulator,
  so more node counts are affordable);
* ``bench_config_hidden`` — hidden-node sweeps (event-driven simulator, so
  fewer node counts and shorter runs).

For paper-scale budgets use :data:`repro.experiments.PAPER` instead (hours).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_result
from repro.experiments.runner import ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Budget for fully connected experiments (slotted simulator).
BENCH_CONNECTED = ExperimentConfig(
    node_counts=(10, 20, 40, 60),
    seeds=(1,),
    measure_duration=1.5,
    warmup=0.3,
    adaptive_warmup=8.0,
    update_period=0.05,
    report_interval=0.5,
    dynamic_segment_duration=6.0,
)

#: Budget for hidden-node experiments (event-driven simulator).
BENCH_HIDDEN = ExperimentConfig(
    node_counts=(10, 20),
    seeds=(1,),
    measure_duration=1.0,
    warmup=0.3,
    adaptive_warmup=4.0,
    update_period=0.05,
    report_interval=0.5,
    dynamic_segment_duration=6.0,
)


@pytest.fixture(scope="session")
def bench_config_connected() -> ExperimentConfig:
    return BENCH_CONNECTED


@pytest.fixture(scope="session")
def bench_config_hidden() -> ExperimentConfig:
    return BENCH_HIDDEN


@pytest.fixture(scope="session")
def record_result():
    """Print an experiment result and persist it under benchmarks/results/."""

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _record(result: ExperimentResult, filename: str) -> ExperimentResult:
        text = format_result(result)
        print("\n" + text + "\n")
        (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")
        return result

    return _record
