"""Benchmark: conflict-matrix batched vs event-driven on the fig6/fig7 grids.

The hidden-node figures are the largest grids of the reproduction and, until
the conflict-matrix backend, the only ones stuck on the scalar event-driven
simulator.  This benchmark submits the Figure 6 (disc radius 16) and
Figure 7 (disc radius 20) grids as *one* campaign — exactly how
``python -m repro.experiments fig6 fig7`` plans them — through both
backends with ``jobs=1``, checks that the per-(scheme, N, radius)
seed-averaged throughputs agree statistically, asserts a wall-clock
speedup, and records the measured numbers under
``benchmarks/results/hidden_speedup.txt`` and
``benchmarks/results/BENCH_hidden_speedup.json`` (the committed note in
``benchmarks/BATCHED_SPEEDUP.md`` quotes a representative run).

The batched side's cost is dominated by the per-event-instant interpreter
overhead, which is paid once per *batch*; wider groups (more seeds, both
radii in one campaign) therefore raise the speedup.  As with the connected
benchmark, the timing assertion uses a conservative floor and only applies
off-CI; the recorded number documents the actual figure.
"""

import os
import pathlib
import time

import pytest

from repro.experiments.campaign import CampaignExecutor
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    group_results,
    hidden_task,
    paper_scheme_specs,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Conservative CI floor; the recorded speedup on an idle machine is >4x.
MIN_SPEEDUP = 2.0

#: Budget sized so the event-driven reference side stays affordable in CI
#: while the groups are wide enough (2 N x 2 radii x 6 seeds = 24 cells per
#: scheme) to show the campaign-scale speedup — the conflict backend pays
#: its per-event-instant interpreter cost once per batch, so its wall clock
#: barely grows with the group width while the event side grows linearly.
SPEEDUP_CONFIG = ExperimentConfig(
    node_counts=(10, 20),
    seeds=(1, 2, 3, 4, 5, 6),
    measure_duration=0.5,
    warmup=0.3,
    adaptive_warmup=2.0,
    update_period=0.05,
    report_interval=0.5,
)


def _fig6_fig7_tasks(config):
    """The fig6 + fig7 grids as one flat task list with grouping keys."""
    specs = paper_scheme_specs(config)
    tasks, keys = [], []
    for radius in (config.hidden_disc_radius_small,
                   config.hidden_disc_radius_large):
        for num_stations in config.node_counts:
            for scheme_name, spec in specs.items():
                for seed in config.seeds:
                    tasks.append(hidden_task(
                        spec, num_stations, radius, seed, config, seed,
                        label=(f"hidden-speedup/r={radius:g}/{scheme_name}"
                               f"/N={num_stations}/seed={seed}"),
                    ))
                    keys.append((radius, scheme_name, num_stations))
    return tasks, keys


@pytest.mark.benchmark(group="hidden-speedup")
def test_conflict_backend_speedup_on_fig6_fig7_grids(benchmark, bench_json):
    config = SPEEDUP_CONFIG
    tasks, keys = _fig6_fig7_tasks(config)

    def run(backend):
        executor = CampaignExecutor(jobs=1, backend=backend)
        started = time.perf_counter()
        results = executor.run(tasks)
        return results, time.perf_counter() - started, executor.last_run_stats

    (batched, batched_s, batched_stats) = benchmark.pedantic(
        run, args=("batched",), rounds=1, iterations=1
    )
    event, event_s, _ = run("event")
    speedup = event_s / batched_s
    assert batched_stats.batched_cells == len(tasks)

    lines = [
        "Conflict-matrix batched vs event-driven backend on the "
        "fig6 + fig7 grids",
        f"grid: 2 radii x {len(config.node_counts)} node counts x "
        f"4 schemes x {len(config.seeds)} seeds ({len(tasks)} cells)",
        f"budgets: measure {config.measure_duration:g} s, adaptive warm-up "
        f"{config.adaptive_warmup:g} s",
        f"event   --jobs 1: {event_s:.1f} s",
        f"batched --jobs 1: {batched_s:.1f} s",
        f"speedup: {speedup:.1f}x",
    ]
    text = "\n".join(lines)
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "hidden_speedup.txt").write_text(text + "\n",
                                                    encoding="utf-8")
    bench_json["backend"] = "batched:conflict-matrix"
    bench_json["grid_shape"] = [2, len(config.node_counts), 4,
                                len(config.seeds)]
    bench_json["cells"] = len(tasks)
    bench_json["cells_per_s"] = round(len(tasks) / batched_s, 3)
    bench_json["extra"].update(
        event_s=round(event_s, 2),
        batched_s=round(batched_s, 2),
        speedup=round(speedup, 2),
        event_cells_per_s=round(len(tasks) / event_s, 3),
    )

    # Seed-averaged throughputs must agree between the two backends.  The
    # tolerance is looser than the per-cell 8 % cross-validation envelope in
    # tests/sim/test_conflict.py because four seeds leave real sampling
    # noise; the absolute floor covers IdleSense's collapsed (sub-Mbps)
    # hidden-node cells.
    batched_avg = group_results(keys, batched)
    event_avg = group_results(keys, event)
    for key in set(keys):
        b = sum(r.total_throughput_mbps for r in batched_avg[key]) / len(
            batched_avg[key])
        e = sum(r.total_throughput_mbps for r in event_avg[key]) / len(
            event_avg[key])
        assert b == pytest.approx(e, rel=0.25, abs=1.0), (key, b, e)

    # Wall-clock ratios are meaningless on throttled shared CI runners, so
    # the timing assertion only applies locally.
    if not os.environ.get("CI"):
        assert speedup >= MIN_SPEEDUP, (
            f"conflict-matrix backend only {speedup:.1f}x faster than the "
            f"event-driven simulator on the fig6/fig7 grids "
            f"(expected >= {MIN_SPEEDUP}x)"
        )
