"""Load-sweep benchmark: unsaturated workloads across all three backends.

Runs the ``fig_load_sweep`` experiment on a reduced grid with the default
``auto`` backend policy, which routes every cell to a vectorized backend
(renewal-slot for connected cells, conflict-matrix for hidden cells).  The
recorded ``cells_per_s`` gates CI against regressions of the batched
backends' traffic path (queue gating, arrival advancement) via
``check_benchmark_regression.py``.
"""

from __future__ import annotations

from repro.experiments.campaign import CampaignExecutor
from repro.experiments.fig_load_sweep import run_fig_load_sweep


def test_fig_load_sweep(bench_config_connected, record_result, bench_json):
    config = bench_config_connected.evolve(
        node_counts=(10,),
        load_points=(0.5, 1.5),
        measure_duration=1.0,
        adaptive_warmup=3.0,
    )
    executor = CampaignExecutor(jobs=1, backend="auto")
    result = run_fig_load_sweep(config, executor=executor)
    record_result(result, "fig_load_sweep.txt")

    stats = executor.last_run_stats
    # Every cell must have executed vectorized: the connected half on the
    # renewal-slot backend, the hidden half on the conflict-matrix backend.
    assert stats.batched_cells == stats.executed == stats.total
    bench_json["backend"] = "batched(auto: renewal-slot + conflict-matrix)"
    bench_json["cells"] = stats.total
    bench_json["extra"]["load_points"] = list(config.load_points)
    bench_json["extra"]["traffic_kind"] = config.traffic_kind

    # Physics sanity on the recorded grid: below saturation the throughput
    # tracks the offered load; past it, delay and drops take over.
    low = next(r for r in result.rows if r.label == "connected/x=0.5")
    high = next(r for r in result.rows if r.label == "connected/x=1.5")
    assert low.values["Standard 802.11 drop"] < 0.05
    assert high.values["Standard 802.11 drop"] > 0.2
    assert (high.values["Standard 802.11 delay ms"]
            > low.values["Standard 802.11 delay ms"])
