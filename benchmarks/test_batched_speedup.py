"""Benchmark: batched vs scalar-slotted wall clock on the Figure 3 grid.

The batched backend's reason to exist is campaign-scale throughput: one
vectorized call sweeps a whole (scheme x N x seed) column at interpreter
cost shared across cells.  This benchmark runs the Figure 3 grid through
both backends with ``jobs=1``, checks that the per-(scheme, N) seed-averaged
throughputs agree statistically, asserts a wall-clock speedup, and records
the measured numbers under ``benchmarks/results/batched_speedup.txt``
(the committed note in ``benchmarks/BATCHED_SPEEDUP.md`` quotes a
representative run).

The speedup grows with the number of cells per (scheme, duration) group:
the quick preset's two seeds barely amortise the vectorization overhead,
while eight seeds (still far below the PAPER preset's budget) exceed 5x.
The assertion uses a conservative floor so CI machine noise cannot flake
the suite; the recorded number documents the actual figure.
"""

import os
import pathlib
import time

import pytest

from repro.experiments.campaign import CampaignExecutor
from repro.experiments.fig3 import run_fig3

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Conservative CI floor; the recorded speedup on an idle machine is >5x.
MIN_SPEEDUP = 2.0


@pytest.mark.benchmark(group="batched-speedup")
def test_batched_backend_speedup_on_fig3_grid(benchmark, bench_config_connected,
                                              bench_json):
    # Eight seeds widen the per-scheme groups enough to show the campaign-
    # scale speedup; the slightly reduced budgets keep the slotted reference
    # run (the slow side of the comparison) affordable in CI.
    config = bench_config_connected.evolve(
        seeds=tuple(range(1, 9)), measure_duration=1.0, adaptive_warmup=5.0,
    )

    def run(backend):
        executor = CampaignExecutor(jobs=1, backend=backend)
        started = time.perf_counter()
        result = run_fig3(config, executor=executor, include_optimum=False)
        return result, time.perf_counter() - started

    batched, batched_s = benchmark.pedantic(
        run, args=("batched",), rounds=1, iterations=1
    )
    slotted, slotted_s = run("slotted")
    speedup = slotted_s / batched_s

    lines = [
        "Batched vs slotted backend on the Figure 3 grid",
        f"grid: {len(config.node_counts)} node counts x "
        f"{len(config.seeds)} seeds x 4 schemes "
        f"({4 * len(config.node_counts) * len(config.seeds)} cells)",
        f"slotted --jobs 1: {slotted_s:.1f} s",
        f"batched --jobs 1: {batched_s:.1f} s",
        f"speedup: {speedup:.1f}x",
    ]
    text = "\n".join(lines)
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "batched_speedup.txt").write_text(text + "\n",
                                                     encoding="utf-8")

    cells = 4 * len(config.node_counts) * len(config.seeds)
    bench_json["backend"] = "batched"
    bench_json["grid_shape"] = [len(config.node_counts), len(config.seeds), 4]
    bench_json["cells"] = cells
    bench_json["cells_per_s"] = round(cells / batched_s, 3)
    bench_json["extra"].update(
        slotted_s=round(slotted_s, 2),
        batched_s=round(batched_s, 2),
        speedup=round(speedup, 2),
    )

    # Seed-averaged throughputs must agree between the two backends: same
    # renewal model, same policies/controllers, independent random streams.
    for row_b, row_s in zip(batched.rows, slotted.rows):
        for column in batched.columns:
            assert row_b.values[column] == pytest.approx(
                row_s.values[column], rel=0.08
            ), (row_b.label, column)

    # Wall-clock ratios are meaningless on throttled shared CI runners, so
    # the timing assertion only applies locally; the statistical-agreement
    # assertions above always run.
    if not os.environ.get("CI"):
        assert speedup >= MIN_SPEEDUP, (
            f"batched backend only {speedup:.1f}x faster than slotted on the "
            f"fig3 grid (expected >= {MIN_SPEEDUP}x)"
        )
