"""FCT-sweep benchmark: closed-loop workloads under a bounded retry limit.

Runs the ``fig_fct_sweep`` experiment (window-limited flows, incast bursts
and AP downlink, all with the 802.11 retry limit) on a reduced budget with
the default ``auto`` backend policy, which routes every connected cell to
the vectorized renewal-slot backend.  The recorded ``cells_per_s`` gates CI
against regressions of the batched closed-loop path (window clocking,
discard redraws, flow accounting) via ``check_benchmark_regression.py``.
"""

from __future__ import annotations

from repro.experiments.campaign import CampaignExecutor
from repro.experiments.fig_fct_sweep import run_fig_fct_sweep


def test_fig_fct_sweep(bench_config_connected, record_result, bench_json):
    config = bench_config_connected.evolve(
        node_counts=(10,),
        measure_duration=1.5,
    )
    executor = CampaignExecutor(jobs=1, backend="auto")
    result = run_fig_fct_sweep(config, executor=executor)
    record_result(result, "fig_fct_sweep.txt")

    stats = executor.last_run_stats
    # Every cell is connected, so all of them must have run vectorized on
    # the renewal-slot backend.
    assert stats.batched_cells == stats.executed == stats.total
    bench_json["backend"] = "batched(renewal-slot)"
    bench_json["cells"] = stats.total
    bench_json["extra"]["retry_limit"] = config.retry_limit
    bench_json["extra"]["workloads"] = [r.label for r in result.rows]

    # Physics sanity: closed-loop flows all complete (an FCT exists), the
    # incast bursts drive the p99 queueing delay well past the window
    # workload's, and the bounded retry chain discards under contention.
    window = next(r for r in result.rows if r.label == "window")
    incast = next(r for r in result.rows if r.label == "incast")
    assert window.values["Standard 802.11 FCT ms"] > 0
    assert (incast.values["Standard 802.11 p99 ms"]
            > window.values["Standard 802.11 p99 ms"])
    assert incast.values["Standard 802.11 Mbps"] > 1.0
