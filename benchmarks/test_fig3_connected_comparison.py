"""Benchmark: Figure 3 — scheme comparison in a fully connected network.

Shape to reproduce:

* wTOP-CSMA, TORA-CSMA and IdleSense stay near the analytic optimum (roughly
  flat in N);
* standard 802.11 is below them and degrades as N grows.
"""

import numpy as np
import pytest

from repro.experiments.fig3 import run_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_connected_comparison(benchmark, bench_config_connected, record_result):
    result = benchmark.pedantic(
        run_fig3, kwargs={"config": bench_config_connected}, rounds=1, iterations=1
    )
    record_result(result, "fig3.txt")

    dcf = np.array(result.column("Standard 802.11"))
    wtop = np.array(result.column("wTOP-CSMA"))
    tora = np.array(result.column("TORA-CSMA"))
    idlesense = np.array(result.column("IdleSense"))
    optimum = np.array(result.column("Analytic optimum"))

    # Standard 802.11 degrades with N (first vs last node count).
    assert dcf[-1] < dcf[0]
    # The adaptive schemes are within 12% of the analytic optimum everywhere.
    for curve in (wtop, tora, idlesense):
        assert np.all(curve >= 0.88 * optimum)
    # And they beat standard 802.11 at the largest N.
    assert wtop[-1] > dcf[-1]
    assert tora[-1] > dcf[-1]
    assert idlesense[-1] > dcf[-1]
