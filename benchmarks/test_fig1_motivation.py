"""Benchmark: Figure 1 — IdleSense vs standard 802.11, with/without hidden nodes.

Shape to reproduce (paper's motivation):

* without hidden nodes IdleSense >= standard 802.11 for every N;
* with hidden nodes IdleSense falls below standard 802.11.
"""

import numpy as np
import pytest

from repro.experiments.fig1 import run_fig1


@pytest.mark.benchmark(group="fig1")
def test_fig1_motivation(benchmark, bench_config_hidden, record_result):
    result = benchmark.pedantic(
        run_fig1, kwargs={"config": bench_config_hidden}, rounds=1, iterations=1
    )
    record_result(result, "fig1.txt")

    idlesense_connected = np.array(result.column("IdleSense (no hidden)"))
    dcf_connected = np.array(result.column("802.11 (no hidden)"))
    idlesense_hidden = np.array(result.column("IdleSense (hidden)"))
    dcf_hidden = np.array(result.column("802.11 (hidden)"))

    # Without hidden nodes, IdleSense beats (or matches) standard 802.11.
    assert np.all(idlesense_connected >= dcf_connected * 0.98)
    # With hidden nodes, IdleSense collapses below standard 802.11 on average.
    assert idlesense_hidden.mean() < dcf_hidden.mean()
    # And far below its own no-hidden performance.
    assert idlesense_hidden.mean() < 0.7 * idlesense_connected.mean()
