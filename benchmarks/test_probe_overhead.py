"""Benchmark: probe cost on the Figure 3 batched grid.

The probe layer (PR 9) extends the telemetry performance contract:

* **Disabled** (no ambient :class:`~repro.telemetry.probes.ProbeConfig`
  session): every instrumented hot loop hoists a single ``probe is None``
  check per run, so the cost versus probe-less code is one branch.  The
  disabled ``cells_per_s`` recorded here feeds the committed-baseline
  regression gate like every batched-backend benchmark.
* **Enabled** (``--probe-interval`` on the CLI): sampling happens once per
  elapsed probe window — a handful of float reads into a bounded ring
  buffer — plus one ``probe`` record per simulated cell.  The in-test
  ceiling is shared with the telemetry benchmark: conservative enough that
  CI machine noise cannot flake it.

Both runs must be bit-identical; the full differential check lives in
``tests/sim/test_probe_differential.py`` and the summary statistics are
re-checked here as a cheap tripwire.
"""

import time

import pytest

from repro.experiments.campaign import CampaignExecutor
from repro.experiments.fig3 import run_fig3
from repro.telemetry import ProbeConfig, Telemetry

#: Conservative CI ceiling for enabled/disabled wall clock (the same bar as
#: the telemetry benchmark); the measured ratio on an idle machine is ~1.05.
MAX_ENABLED_RATIO = 1.25


@pytest.mark.benchmark(group="probe-overhead")
def test_probe_overhead_on_fig3_batched_grid(benchmark,
                                             bench_config_connected,
                                             bench_json):
    # Same grid as the telemetry benchmark so the two overhead numbers are
    # directly comparable: four seeds give the batched kernels real columns.
    config = bench_config_connected.evolve(
        seeds=(1, 2, 3, 4), measure_duration=1.0, adaptive_warmup=5.0,
    )
    probe = ProbeConfig(interval=0.5)

    def run(enabled):
        # Probes stream through telemetry, so the enabled variant carries a
        # full tracing session: the ratio measures the real --probe-interval
        # cost on top of a plain run, not probes in isolation.
        executor = CampaignExecutor(
            jobs=1, backend="batched",
            telemetry=Telemetry(sink=sunk.append, keep_records=False)
            if enabled else None,
            probe=probe if enabled else None,
        )
        started = time.perf_counter()
        result = run_fig3(config, executor=executor, include_optimum=False)
        return result, time.perf_counter() - started

    sunk = []
    run(False)  # warm-up: imports, allocator, CPU governor
    disabled_s = enabled_s = float("inf")
    reference = None
    for _ in range(3):
        result, elapsed = run(False)
        disabled_s = min(disabled_s, elapsed)
        reference = result
        sunk = []
        probed, elapsed = run(True)
        enabled_s = min(enabled_s, elapsed)

    # Tripwire for the bit-identity contract (full check lives in tests/).
    assert [row.values for row in probed.rows] == \
        [row.values for row in reference.rows]
    assert any(record["type"] == "probe" for record in sunk)

    _, timed_s = benchmark.pedantic(run, args=(False,), rounds=1, iterations=1)
    disabled_s = min(disabled_s, timed_s)
    ratio = enabled_s / disabled_s
    assert ratio < MAX_ENABLED_RATIO, (
        f"enabled probes took {ratio:.2f}x the disabled wall clock "
        f"(ceiling {MAX_ENABLED_RATIO}x): {enabled_s:.2f}s vs {disabled_s:.2f}s"
    )

    cells = 4 * len(config.node_counts) * len(config.seeds)
    bench_json["backend"] = "batched"
    bench_json["grid_shape"] = [len(config.node_counts), len(config.seeds), 4]
    bench_json["cells"] = cells
    bench_json["cells_per_s"] = round(cells / disabled_s, 3)
    bench_json["extra"].update(
        disabled_s=round(disabled_s, 2),
        enabled_s=round(enabled_s, 2),
        enabled_ratio=round(ratio, 3),
        probe_interval_s=probe.interval,
    )
    print(f"\nprobe overhead on the Figure 3 batched grid ({cells} cells): "
          f"disabled {disabled_s:.2f}s, enabled {enabled_s:.2f}s "
          f"({ratio:.2f}x)\n")
