"""Benchmark: Table I — simulation parameters.

Regenerates the parameter listing every other experiment relies on and checks
the derived frame durations are self-consistent.
"""

import pytest

from repro.experiments.table1 import run_table1
from repro.phy.constants import PhyParameters


@pytest.mark.benchmark(group="table1")
def test_table1_parameters(benchmark, record_result):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    record_result(result, "table1.txt")

    labels = dict((row.label, row.values["value"]) for row in result.rows)
    assert labels["CWmin"] == 8
    assert labels["CWmax"] == 1024
    assert "54" in str(labels["Bit Rate"])
    # Ts > Tc and both are fractions of a millisecond for an 8000-bit payload.
    phy = PhyParameters()
    assert 0.0001 < phy.tc < phy.ts < 0.001
