"""Benchmark: Figures 8-9 — wTOP-CSMA under a changing number of stations.

Shape to reproduce:

* throughput stays near the optimum across the population steps (no lasting
  collapse after a step);
* the advertised attempt probability re-converges after each step and is
  (on average) lower when more stations are active — the ``p* ~ 1/N``
  behaviour of Eq. (8).
"""

import numpy as np
import pytest

from repro.experiments.fig8_9 import run_fig8_9


@pytest.mark.benchmark(group="fig8_9")
def test_fig8_9_wtop_dynamics(benchmark, bench_config_connected, record_result):
    result = benchmark.pedantic(
        run_fig8_9,
        kwargs={"config": bench_config_connected, "include_hidden": False},
        rounds=1, iterations=1,
    )
    record_result(result, "fig8_9.txt")

    times = [float(label[2:-1]) for label in result.row_labels()]
    throughput = np.array(result.column("throughput (no hidden)"))
    control = np.array(result.column("p (no hidden)"))
    active = np.array(result.column("active stations"))

    assert len(times) >= 10
    # After an initial convergence window, throughput never collapses.
    settled = throughput[len(throughput) // 5:]
    assert settled.min() > 15.0
    assert settled.mean() > 20.0
    # The advertised probability is lower in the N=60 segment than in the
    # N=10 segment (tail halves of each segment, after re-convergence).
    p_small_n = control[(active == 10)][-2:].mean()
    p_large_n = control[(active == 60)][-2:].mean()
    assert p_large_n < p_small_n
