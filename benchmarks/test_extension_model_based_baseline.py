"""Extension: model-based adaptive baseline vs the paper's model-free schemes.

The paper's related-work argument (Sections I and VII) is that *model-based*
adaptive schemes — those that estimate the number of contenders and set
``p* = 1/(N sqrt(Tc*/2))``, e.g. Bianchi/Cali et al. — are near-optimal in
fully connected networks but break with hidden nodes because the quantities
they estimate are no longer observable.  The reproduction implements that
baseline (`repro.mac.ntuning`) and this benchmark verifies the argument:

* fully connected: the N-estimating baseline is close to the analytic optimum
  (within a few percent of wTOP/TORA);
* hidden nodes: it loses a large fraction of its throughput while TORA-CSMA
  (model-free, exponential backoff) stays high.
"""

import pytest

from repro.experiments.runner import ExperimentResult, ExperimentRow
from repro.mac.schemes import n_estimating_scheme, tora_csma_scheme
from repro.phy.constants import PhyParameters
from repro.sim.simulation import run_event_driven
from repro.sim.slotted import run_slotted
from repro.topology.scenarios import fully_connected_scenario, hidden_node_scenario

import numpy as np


@pytest.mark.benchmark(group="extension")
def test_extension_model_based_baseline(benchmark, record_result):
    phy = PhyParameters()
    num_stations = 15

    def run_all():
        connected = fully_connected_scenario(num_stations)
        hidden = hidden_node_scenario(
            num_stations, np.random.default_rng(11), radius=16.0,
            require_hidden_pairs=True,
        )
        rows = {}
        for name, scheme_factory in (
            ("N-estimating p-persistent", lambda: n_estimating_scheme(phy)),
            ("TORA-CSMA", lambda: tora_csma_scheme(phy, update_period=0.05)),
        ):
            connected_result = run_slotted(
                scheme_factory(), num_stations, duration=1.5, warmup=4.0,
                phy=phy, seed=1,
            )
            hidden_result = run_event_driven(
                scheme_factory(), hidden, duration=1.5, warmup=4.0,
                phy=phy, seed=1,
            )
            rows[name] = (
                connected_result.total_throughput_mbps,
                hidden_result.total_throughput_mbps,
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    result = ExperimentResult(
        name="Extension: model-based baseline under hidden nodes",
        description=(
            "Estimate-N-and-set-p* baseline ([2],[4],[7]-style) vs TORA-CSMA, "
            "fully connected and hidden-node topologies (15 stations)"
        ),
        columns=("connected (Mbps)", "hidden (Mbps)", "retained fraction"),
        rows=tuple(
            ExperimentRow(label=name, values={
                "connected (Mbps)": connected,
                "hidden (Mbps)": hidden,
                "retained fraction": hidden / connected if connected else 0.0,
            })
            for name, (connected, hidden) in rows.items()
        ),
        metadata={"num_stations": num_stations, "disc_radius": 16.0},
    )
    record_result(result, "extension_model_based_baseline.txt")

    baseline_connected, baseline_hidden = rows["N-estimating p-persistent"]
    tora_connected, tora_hidden = rows["TORA-CSMA"]

    # Without hidden nodes the model-based baseline is competitive.
    assert baseline_connected > 0.85 * tora_connected
    # With hidden nodes the model-free scheme retains clearly more throughput.
    assert tora_hidden > baseline_hidden
    assert (tora_hidden / tora_connected) > (baseline_hidden / baseline_connected)
