"""Benchmark: Figure 13 — RandomReset(0; p0) throughput vs p0, fully connected.

Shape to reproduce:

* the curve is quasi-concave in p0 with a broad, flat top (the paper's
  argument for TORA-CSMA's robustness to control-variable oscillation);
* it is much flatter around its maximum than the p-persistent curve of
  Figure 2 (relative drop over a comparable neighbourhood of the optimum).
"""

import numpy as np
import pytest

from repro.analysis.persistent import optimal_attempt_probability, throughput_curve
from repro.experiments.fig13 import run_fig13
from repro.phy.constants import PhyParameters


@pytest.mark.benchmark(group="fig13")
def test_fig13_randomreset_connected(benchmark, bench_config_connected, record_result):
    config = bench_config_connected.evolve(measure_duration=0.6, warmup=0.2)
    result = benchmark.pedantic(
        run_fig13,
        kwargs={"config": config, "node_counts": (20, 40), "simulate": True},
        rounds=1, iterations=1,
    )
    record_result(result, "fig13.txt")

    phy = PhyParameters()
    for n in (20, 40):
        assert result.metadata["quasi_concave"][f"analytic N={n}"] is True
        analytic = np.array(result.column(f"analytic N={n}"))
        simulated = np.array(result.column(f"simulated N={n}"))
        peak = int(np.argmax(analytic))
        assert simulated[peak] == pytest.approx(analytic[peak], rel=0.15)

        # Flatness: across the inner half of the p0 range the RandomReset
        # curve loses at most ~35% of its peak, while the p-persistent curve
        # over a comparable (x4 around p*) range loses much more.
        inner = analytic[2:-2]
        rr_drop = 1.0 - inner.min() / analytic.max()
        p_star = optimal_attempt_probability(n, phy)
        pp_curve = throughput_curve([p_star / 4, p_star, p_star * 4], n, phy) / 1e6
        pp_drop = 1.0 - min(pp_curve[0], pp_curve[-1]) / pp_curve[1]
        assert rr_drop < pp_drop
