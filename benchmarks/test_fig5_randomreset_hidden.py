"""Benchmark: Figure 5 — RandomReset throughput vs reset probability with
hidden nodes.

Shape to reproduce: unimodal (quasi-concave) dependence on p0 for j = 0, the
second empirical quasi-concavity result the paper relies on.
"""

import numpy as np
import pytest

from repro.experiments.fig5 import run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_randomreset_hidden(benchmark, bench_config_hidden, record_result):
    result = benchmark.pedantic(
        run_fig5,
        kwargs={
            "config": bench_config_hidden,
            "node_counts": (10, 20),
            "reset_probabilities": (0.0, 0.25, 0.5, 0.75, 1.0),
            "topology_seeds": (11,),
        },
        rounds=1, iterations=1,
    )
    record_result(result, "fig5.txt")

    quasi = result.metadata["quasi_concave"]
    assert all(quasi.values()), f"non-unimodal curves: {quasi}"
    for column in result.columns:
        curve = np.array(result.column(column))
        assert np.all(curve > 0)
