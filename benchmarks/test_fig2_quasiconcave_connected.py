"""Benchmark: Figure 2 — p-persistent throughput vs attempt probability
(fully connected, 20 and 40 stations).

Shape to reproduce: a bell-shaped (quasi-concave) curve peaking at an
interior attempt probability, with the simulated curve tracking Eq. (3).
"""

import numpy as np
import pytest

from repro.experiments.fig2 import run_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_quasiconcave_connected(benchmark, bench_config_connected, record_result):
    config = bench_config_connected.evolve(measure_duration=0.6, warmup=0.2)
    result = benchmark.pedantic(
        run_fig2,
        kwargs={"config": config, "node_counts": (20, 40), "simulate": True},
        rounds=1, iterations=1,
    )
    record_result(result, "fig2.txt")

    for n in (20, 40):
        assert result.metadata["quasi_concave"][f"analytic N={n}"] is True
        assert result.metadata["quasi_concave"][f"simulated N={n}"] is True
        analytic = np.array(result.column(f"analytic N={n}"))
        simulated = np.array(result.column(f"simulated N={n}"))
        # The peak is interior (bell shape), and simulation tracks the model
        # to within 15% at the peak.
        peak = int(np.argmax(analytic))
        assert 0 < peak < len(analytic) - 1
        assert simulated[peak] == pytest.approx(analytic[peak], rel=0.15)
