"""Benchmark: Figure 4 — p-persistent throughput vs attempt probability with
hidden nodes.

Shape to reproduce: the throughput remains a (noise-tolerant) unimodal
function of the attempt probability even on random hidden-node topologies —
the empirical justification for running Kiefer-Wolfowitz there.
"""

import numpy as np
import pytest

from repro.experiments.fig4 import run_fig4


@pytest.mark.benchmark(group="fig4")
def test_fig4_quasiconcave_hidden(benchmark, bench_config_hidden, record_result):
    probabilities = tuple(np.exp(np.linspace(-9.0, -2.0, 6)))
    result = benchmark.pedantic(
        run_fig4,
        kwargs={
            "config": bench_config_hidden,
            "node_counts": (10, 20),
            "probabilities": probabilities,
            "topology_seeds": (11,),
        },
        rounds=1, iterations=1,
    )
    record_result(result, "fig4.txt")

    quasi = result.metadata["quasi_concave"]
    assert all(quasi.values()), f"non-unimodal curves: {quasi}"
    # The curve is informative: its dynamic range is large (low p starves the
    # channel, high p drowns it in collisions).
    for column in result.columns:
        curve = np.array(result.column(column))
        assert curve.max() > 2.0 * max(curve.min(), 0.1)
