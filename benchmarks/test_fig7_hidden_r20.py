"""Benchmark: Figure 7 — scheme comparison with hidden nodes (disc radius 20).

Same protocol as Figure 6 with a wider disc (more hidden pairs); the ordering
TORA-CSMA >= wTOP-CSMA >> IdleSense must persist.
"""

import numpy as np
import pytest

from repro.experiments.fig6_7 import run_fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_hidden_r20(benchmark, bench_config_hidden, record_result):
    result = benchmark.pedantic(
        run_fig7, kwargs={"config": bench_config_hidden}, rounds=1, iterations=1
    )
    record_result(result, "fig7.txt")

    wtop = np.array(result.column("wTOP-CSMA"))
    tora = np.array(result.column("TORA-CSMA"))
    idlesense = np.array(result.column("IdleSense"))

    assert tora.mean() >= wtop.mean()
    assert idlesense.mean() < 0.5 * tora.mean()
    assert np.all(tora > 5.0)
