"""Benchmark: Figures 10-11 — TORA-CSMA under a changing number of stations.

Shape to reproduce: throughput recovers after every population step (the
reset probability / stage re-converge), staying near the fully connected
optimum throughout.
"""

import numpy as np
import pytest

from repro.experiments.fig10_11 import run_fig10_11


@pytest.mark.benchmark(group="fig10_11")
def test_fig10_11_tora_dynamics(benchmark, bench_config_connected, record_result):
    result = benchmark.pedantic(
        run_fig10_11,
        kwargs={"config": bench_config_connected, "include_hidden": False},
        rounds=1, iterations=1,
    )
    record_result(result, "fig10_11.txt")

    throughput = np.array(result.column("throughput (no hidden)"))
    p0 = np.array(result.column("p0 (no hidden)"))

    assert len(throughput) >= 10
    settled = throughput[len(throughput) // 5:]
    assert settled.min() > 15.0
    assert settled.mean() > 20.0
    # The reset probability stays inside (0, 1): the stage-shift logic keeps
    # the operating point interior rather than pinned at a boundary.
    assert np.all(p0 >= 0.0) and np.all(p0 <= 1.0)
    assert 0.05 < p0[len(p0) // 2:].mean() < 0.95
