#!/usr/bin/env python
"""Benchmark regression gate for the vectorized (batched) backends.

Compares the machine-readable ``benchmarks/results/BENCH_*.json`` records
produced by the current benchmark run against the committed baselines in
``benchmarks/baselines/`` and **fails (exit 1) when a batched backend's
``cells_per_s`` regressed by more than the tolerance** (default 25 %).

Only records whose ``backend`` mentions ``batched`` gate the build — the
scalar simulators are oracles, not the perf product, and their wall clock is
tracked informationally.  Benchmarks without a committed baseline are
reported but never fail the gate (new benchmarks start gating once their
baseline is committed).  When a record carries a machine-independent
``speedup`` field (batched vs scalar wall-clock ratio, immune to runner
throttling), a >25 % drop of that ratio is also flagged.

Usage::

    python benchmarks/check_benchmark_regression.py            # gate
    python benchmarks/check_benchmark_regression.py --update-baselines

Environment:

``BENCH_REGRESSION_TOLERANCE``
    Override the fractional tolerance (e.g. ``0.4`` on very noisy runners).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import sys

HERE = pathlib.Path(__file__).parent
RESULTS_DIR = HERE / "results"
BASELINES_DIR = HERE / "baselines"

#: Fail on a cells/sec (or speedup-ratio) drop larger than this fraction.
DEFAULT_TOLERANCE = 0.25

#: Exit code when there are no benchmark results to gate at all (distinct
#: from 1 = regression found): the benchmark suite crashed before emitting
#: any ``BENCH_*.json``, or was never run.
EXIT_NO_RESULTS = 2


def _load(path: pathlib.Path):
    """Parse one benchmark record; None (with a message) on any defect.

    Every failure mode names the offending file so the fix is obvious from
    CI logs alone — a malformed or missing record must never surface as a
    raw traceback.
    """
    if not path.exists():
        print(f"  [MISSING] benchmark record not found: {path}")
        return None
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        print(f"  [warn] cannot read benchmark record {path}: {error}")
        return None
    except ValueError as error:
        print(f"  [warn] invalid JSON in benchmark record {path}: {error}")
        return None
    if not isinstance(record, dict):
        print(f"  [warn] benchmark record {path} is not a JSON object "
              f"(got {type(record).__name__})")
        return None
    return record


def _metric_value(record, metric: str, path: pathlib.Path):
    """A record's numeric metric, or None (with a message) when unusable."""
    value = record.get(metric)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        print(f"  [warn] metric '{metric}' in {path} is not numeric "
              f"(got {value!r})")
        return None
    return value


def _is_batched(record) -> bool:
    backend = record.get("backend")
    return isinstance(backend, str) and "batched" in backend


def compare(tolerance: float) -> int:
    """Return the number of gating regressions; print a report."""
    if not BASELINES_DIR.is_dir():
        print(f"no baselines directory at {BASELINES_DIR}; nothing to gate")
        return 0
    regressions = 0
    baselines = sorted(BASELINES_DIR.glob("BENCH_*.json"))
    if not baselines:
        print("no committed baselines; nothing to gate")
        return 0
    for baseline_path in baselines:
        baseline = _load(baseline_path)
        if baseline is None:
            continue
        name = baseline_path.name
        gated = _is_batched(baseline)
        if not gated:
            print(f"  [info] {name}: scalar backend, tracked but not gated")
            continue
        # A gated benchmark that produced no record is itself a failure:
        # otherwise renaming or breaking the benchmark silently disables
        # its own gate — the exact regression class the gate exists for.
        current_path = RESULTS_DIR / name
        current = _load(current_path) if current_path.exists() else None
        if current is None:
            print(f"  [MISSING] {name}: gated baseline {baseline_path} has "
                  f"no current record at {current_path} (benchmark renamed, "
                  f"skipped or crashed? run the benchmark suite to produce "
                  f"it, or delete the baseline to stop gating it)")
            regressions += 1
            continue
        compared = 0
        for metric in ("cells_per_s", "speedup"):
            base_value = _metric_value(baseline, metric, baseline_path)
            if not base_value:
                continue
            new_value = _metric_value(current, metric, current_path)
            if new_value is None:
                # The metric existed in the baseline: losing it is lost
                # gate coverage, not a pass.
                print(f"  [MISSING] {name}: baseline metric '{metric}' "
                      f"absent from the current record {current_path}")
                regressions += 1
                continue
            compared += 1
            ratio = new_value / base_value
            status = "ok"
            if ratio < 1.0 - tolerance:
                status = "REGRESSION"
                regressions += 1
            print(f"  [{status}] {name}: {metric} {base_value:g} -> "
                  f"{new_value:g} ({ratio:.2f}x of baseline)")
        if compared == 0 and not regressions:
            print(f"  [warn] {name}: baseline carries no gateable metrics")
    return regressions


def update_baselines() -> None:
    BASELINES_DIR.mkdir(parents=True, exist_ok=True)
    if not RESULTS_DIR.is_dir():
        print(f"no results directory at {RESULTS_DIR}; run the benchmark "
              f"suite first to produce BENCH_*.json records")
        return
    copied = 0
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        record = _load(path)
        if record is None or not _is_batched(record):
            continue
        shutil.copy(path, BASELINES_DIR / path.name)
        copied += 1
        print(f"  baselined {path.name}")
    if not copied:
        print(f"no batched-backend records under {RESULTS_DIR} to "
              "baseline (run the speedup benchmarks first)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-baselines", action="store_true",
        help="copy the current batched-backend BENCH_*.json records into "
             "benchmarks/baselines/",
    )
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("BENCH_REGRESSION_TOLERANCE",
                                     DEFAULT_TOLERANCE)),
        help=f"fractional regression tolerance (default "
             f"{DEFAULT_TOLERANCE:g}, env BENCH_REGRESSION_TOLERANCE)",
    )
    args = parser.parse_args(argv)
    if args.update_baselines:
        update_baselines()
        return 0
    # An empty results directory means the benchmark suite crashed (or was
    # never run) before emitting a single record: gating nothing would pass
    # vacuously, hiding exactly the failure the gate exists to catch.
    if not RESULTS_DIR.is_dir() or not any(RESULTS_DIR.glob("BENCH_*.json")):
        print(f"no benchmark results: {RESULTS_DIR} "
              f"{'is empty of BENCH_*.json records' if RESULTS_DIR.is_dir() else 'does not exist'}.")
        print("The benchmark suite crashed before emitting JSON, or was "
              "never run. Run it first:")
        print("  PYTHONPATH=src python -m pytest benchmarks/ "
              "--benchmark-disable -q")
        print(f"then re-run this gate (exit {EXIT_NO_RESULTS} = nothing to "
              f"gate, distinct from 1 = regression).")
        return EXIT_NO_RESULTS
    print(f"benchmark regression gate (tolerance {args.tolerance:.0%}):")
    regressions = compare(args.tolerance)
    if regressions:
        print(f"{regressions} batched-backend regression(s) beyond "
              f"{args.tolerance:.0%} — failing")
        return 1
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
