"""Ablations of the controller design choices called out in DESIGN.md.

Two calibrations distinguish the implementation from a literal transcription
of Algorithm 1, and both are exercised here against the *analytical* plant
(Eq. 3 plus noise), so the ablation is fast and isolates the controller:

1. **Control-variable mapping** — optimising ``log(p)`` (default) vs the
   paper-literal linear ``p``.  With the realistic optimum ``p* ~ 1/N`` the
   log-domain controller reaches a near-optimal operating point quickly,
   while the linear-domain controller is still far away after the same
   number of updates (because its perturbation ``b_k`` dwarfs ``p*``).
2. **Throughput normalisation** — scaling measurements to O(1) vs feeding raw
   bits/s into the gradient.  Without normalisation the update saturates the
   clipping bounds and the centre bangs between the extremes.
"""

import numpy as np
import pytest

from repro.analysis.persistent import (
    optimal_attempt_probability,
    system_throughput_weighted,
)
from repro.core.mapping import LinearMapping
from repro.core.wtop import WTopCsmaController
from repro.experiments.runner import ExperimentResult, ExperimentRow
from repro.phy.constants import PhyParameters

NUM_STATIONS = 40
UPDATES = 150


def closed_loop_throughput(controller, phy, seed=5):
    """Run the controller against the Eq. (3) plant; return final throughput.

    Each loop iteration is one measurement segment of one (virtual) second:
    the tick at the segment boundary closes the previous segment, the probe
    value advertised for the new segment is read, and the bits received at
    that probe are delivered mid-segment.
    """
    rng = np.random.default_rng(seed)
    weights = [1.0] * NUM_STATIONS
    now = 0.0
    for _ in range(2 * UPDATES):
        controller.on_tick(now)
        p = controller.control()["p"]
        throughput = system_throughput_weighted(p, weights, phy)
        throughput *= 1.0 + rng.normal(0, 0.03)
        controller.on_packet_received(0, int(max(throughput, 0.0)), now + 0.5)
        now += 1.0
    return system_throughput_weighted(controller.center_p, weights, phy)


@pytest.mark.benchmark(group="ablation")
def test_ablation_controller_design(benchmark, record_result):
    phy = PhyParameters()
    p_star = optimal_attempt_probability(NUM_STATIONS, phy)
    optimum = system_throughput_weighted(p_star, [1.0] * NUM_STATIONS, phy)

    def run_all():
        variants = {
            "log mapping + normalised (default)": WTopCsmaController(
                update_period=1.0
            ),
            "linear mapping + normalised": WTopCsmaController(
                update_period=1.0, mapping=LinearMapping(0.0, 0.9)
            ),
            "log mapping, no normalisation": WTopCsmaController(
                update_period=1.0, throughput_scale=1.0
            ),
        }
        return {
            name: closed_loop_throughput(controller, phy) / optimum
            for name, controller in variants.items()
        }

    fractions = benchmark.pedantic(run_all, rounds=1, iterations=1)

    result = ExperimentResult(
        name="Ablation: wTOP-CSMA controller design",
        description=(
            f"Fraction of the optimal throughput reached after {UPDATES} "
            f"Kiefer-Wolfowitz updates against the analytical plant (N={NUM_STATIONS})"
        ),
        columns=("fraction of optimum",),
        rows=tuple(
            ExperimentRow(label=name, values={"fraction of optimum": value})
            for name, value in fractions.items()
        ),
        metadata={"num_stations": NUM_STATIONS, "updates": UPDATES},
    )
    record_result(result, "ablation_controller.txt")

    default = fractions["log mapping + normalised (default)"]
    linear = fractions["linear mapping + normalised"]
    unnormalised = fractions["log mapping, no normalisation"]

    assert default > 0.93
    # The default calibration must not be worse than either ablated variant.
    assert default >= linear - 0.02
    assert default >= unnormalised - 0.02
