"""Benchmark: telemetry cost on the Figure 3 batched grid.

The telemetry subsystem promises two things about performance:

* **Disabled** (the default — no ``--trace``): instrumented hot loops hoist a
  single ``tel.enabled`` check per run, so the cost versus the pre-telemetry
  code is one branch per loop iteration.  That claim is enforced by the
  regression gate: this benchmark records the disabled-telemetry ``cells_per_s``
  into its ``BENCH_*.json``, and ``check_benchmark_regression.py`` compares it
  (like every batched-backend record) against the committed baseline.
* **Enabled** (``--trace FILE.jsonl``): counters are plain integer adds inside
  the loop plus one ``counters`` record per simulator call, so tracing a
  campaign stays cheap enough to leave on for real runs.  A representative
  measurement puts the enabled/disabled ratio below 1.05; the in-test
  assertion uses a conservative ceiling so CI machine noise cannot flake it.

Both runs must also be bit-identical — the correctness half of that claim
lives in ``tests/sim/test_telemetry_differential.py``; here we only re-check
the summary statistics as a cheap tripwire.
"""

import time

import pytest

from repro.experiments.campaign import CampaignExecutor
from repro.experiments.fig3 import run_fig3
from repro.telemetry import Telemetry

#: Conservative CI ceiling for enabled/disabled wall clock; the measured
#: ratio on an idle machine is ~1.04.
MAX_ENABLED_RATIO = 1.25


@pytest.mark.benchmark(group="telemetry-overhead")
def test_telemetry_overhead_on_fig3_batched_grid(benchmark,
                                                 bench_config_connected,
                                                 bench_json):
    # Four seeds give the batched kernels real columns to sweep while keeping
    # three repetitions of both variants affordable in CI.
    config = bench_config_connected.evolve(
        seeds=(1, 2, 3, 4), measure_duration=1.0, adaptive_warmup=5.0,
    )

    def run(telemetry):
        executor = CampaignExecutor(jobs=1, backend="batched",
                                    telemetry=telemetry)
        started = time.perf_counter()
        result = run_fig3(config, executor=executor, include_optimum=False)
        return result, time.perf_counter() - started

    def sink(record):  # a real (non-trivial) sink, like JsonlTraceWriter
        sunk.append(record["type"])

    run(None)  # warm-up: imports, allocator, CPU governor
    disabled_s = enabled_s = float("inf")
    reference = None
    for _ in range(3):
        result, elapsed = run(None)
        disabled_s = min(disabled_s, elapsed)
        reference = result
        sunk = []
        traced, elapsed = run(Telemetry(sink=sink, keep_records=False))
        enabled_s = min(enabled_s, elapsed)

    # Tripwire for the bit-identity contract (full check lives in tests/).
    assert [row.values for row in traced.rows] == \
        [row.values for row in reference.rows]
    assert "counters" in sunk and "task" in sunk

    _, timed_s = benchmark.pedantic(run, args=(None,), rounds=1, iterations=1)
    disabled_s = min(disabled_s, timed_s)
    ratio = enabled_s / disabled_s
    assert ratio < MAX_ENABLED_RATIO, (
        f"enabled telemetry took {ratio:.2f}x the disabled wall clock "
        f"(ceiling {MAX_ENABLED_RATIO}x): {enabled_s:.2f}s vs {disabled_s:.2f}s"
    )

    cells = 4 * len(config.node_counts) * len(config.seeds)
    bench_json["backend"] = "batched"
    bench_json["grid_shape"] = [len(config.node_counts), len(config.seeds), 4]
    bench_json["cells"] = cells
    bench_json["cells_per_s"] = round(cells / disabled_s, 3)
    bench_json["extra"].update(
        disabled_s=round(disabled_s, 2),
        enabled_s=round(enabled_s, 2),
        enabled_ratio=round(ratio, 3),
    )
    print(f"\ntelemetry overhead on the Figure 3 batched grid ({cells} cells): "
          f"disabled {disabled_s:.2f}s, enabled {enabled_s:.2f}s "
          f"({ratio:.2f}x)\n")
