"""Benchmark: Figure 12 — RandomReset fixed-point structure.

Shape to reproduce: tau_c(0; p0) decreases in the conditional collision
probability, increases in p0, and the resulting fixed points (intersections
with c = 1 - (1 - tau)^(N-1)) move to higher attempt probabilities as p0
grows (Lemma 5's monotonicity through the fixed point).
"""

import numpy as np
import pytest

from repro.experiments.fig12 import run_fig12


@pytest.mark.benchmark(group="fig12")
def test_fig12_fixed_point(benchmark, record_result):
    result = benchmark.pedantic(
        run_fig12,
        kwargs={"num_stations": 10, "cw_min": 2, "num_stages": 5},
        rounds=1, iterations=1,
    )
    record_result(result, "fig12.txt")

    reset_probabilities = (0.0, 0.2, 0.4, 0.6, 0.8)
    # tau_c decreasing in c for every p0 curve.
    for p0 in reset_probabilities:
        curve = np.array(result.column(f"tau_c(p0={p0:g})"))
        assert np.all(np.diff(curve) <= 1e-12)
    # tau_c increasing in p0 at every sampled c.
    for row in result.rows:
        values = [row.values[f"tau_c(p0={p0:g})"] for p0 in reset_probabilities]
        assert values == sorted(values)
    # Fixed points increase with p0 (paper: intersection moves up-right).
    fixed = result.metadata["fixed_point_tau"]
    ordered = [fixed[f"p0={p0:g}"] for p0 in reset_probabilities]
    assert ordered == sorted(ordered)
