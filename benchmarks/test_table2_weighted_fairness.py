"""Benchmark: Table II — weighted fairness of wTOP-CSMA (10 stations).

Shape to reproduce: per-station throughput proportional to the weight
(normalised throughput nearly equal across stations) while total throughput
stays near the fully connected optimum.
"""

import numpy as np
import pytest

from repro.analysis.persistent import optimal_attempt_probability, system_throughput_weighted
from repro.experiments.table2 import PAPER_WEIGHTS, run_table2
from repro.phy.constants import PhyParameters


@pytest.mark.benchmark(group="table2")
def test_table2_weighted_fairness(benchmark, bench_config_connected, record_result):
    config = bench_config_connected.evolve(adaptive_warmup=12.0, measure_duration=3.0)
    result = benchmark.pedantic(
        run_table2, kwargs={"config": config, "seed": 1}, rounds=1, iterations=1
    )
    record_result(result, "table2.txt")

    normalized = np.array(result.column("normalized (Mbps)"))
    weights = np.array(result.column("weight"))
    throughputs = np.array(result.column("throughput (Mbps)"))

    # Normalised throughput nearly equal across stations (Jain ~ 1).
    assert result.metadata["jain_index_normalized"] > 0.995
    assert result.metadata["max_relative_deviation"] < 0.15
    # Higher-weight stations really do get proportionally more.
    mean_w1 = throughputs[weights == 1].mean()
    mean_w3 = throughputs[weights == 3].mean()
    assert mean_w3 / mean_w1 == pytest.approx(3.0, rel=0.2)
    # Total throughput near the weighted optimum of Eq. (3).
    phy = PhyParameters()
    p_star = optimal_attempt_probability(len(PAPER_WEIGHTS), phy,
                                         weights=list(map(float, PAPER_WEIGHTS)))
    optimum = system_throughput_weighted(p_star, PAPER_WEIGHTS, phy) / 1e6
    assert result.metadata["total_throughput_mbps"] >= 0.85 * optimum
